"""Exhaustive model checking of the paper's commit protocols.

The MODELCHECK spec kind: a :class:`~repro.modelcheck.spec.ModelCheckSpec`
names a protocol, a site count and a fault envelope; its executor runs the
bounded exhaustive exploration of :mod:`repro.core.reachability`, verifies
the paper's invariants (same-decision, no-commit-after-abort,
commit-requires-votes, no-blocking) as machine-checked properties of the
global state graph, and reduces to a
:class:`~repro.modelcheck.summary.ModelCheckSummary` with per-invariant
verdicts and minimal counterexample traces.

Because the kind registers through :mod:`repro.engine.registry` (listed in
``BUILTIN_KIND_PROVIDERS``), exhaustive checking shards, caches, streams
and merges exactly like the simulator grids, and
:mod:`repro.modelcheck.differential` cross-validates the two independent
semantics -- exhaustive checker vs. event-driven simulator -- on identical
configurations.
"""

from repro.modelcheck.spec import ModelCheckSpec
from repro.modelcheck.summary import ModelCheckSummary
from repro.modelcheck.checker import ModelCheckResult, check_model
from repro.modelcheck.protocols import checkable_protocols, resolve_protocol

__all__ = [
    "ModelCheckSpec",
    "ModelCheckSummary",
    "ModelCheckResult",
    "check_model",
    "checkable_protocols",
    "resolve_protocol",
]
