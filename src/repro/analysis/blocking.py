"""Blocking and lock-retention analysis.

Blocking is the availability failure the paper sets out to remove: a blocked
transaction "cannot relinquish the locks acquired ... rendering those data
inaccessible to other transactions" (Section 2).  The report below measures
how often each protocol blocks and for how long data stays locked, which is
what the AVAIL experiment compares across protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.protocols.runner import TransactionRunResult


@dataclass
class BlockingReport:
    """Blocking statistics over a batch of runs of one protocol."""

    protocol: str
    total_runs: int = 0
    blocked_runs: int = 0
    blocked_site_count: int = 0
    runs_with_locks_held_at_end: int = 0
    lock_hold_times: list[float] = field(default_factory=list)
    decision_latencies: list[float] = field(default_factory=list)

    @property
    def blocking_rate(self) -> float:
        """Fraction of runs with at least one blocked site."""
        return self.blocked_runs / self.total_runs if self.total_runs else 0.0

    @property
    def mean_blocked_sites(self) -> float:
        """Average number of blocked sites per run."""
        return self.blocked_site_count / self.total_runs if self.total_runs else 0.0

    @property
    def mean_decision_latency(self) -> Optional[float]:
        """Mean time to the slowest decision, over runs where everyone decided."""
        if not self.decision_latencies:
            return None
        return sum(self.decision_latencies) / len(self.decision_latencies)

    @property
    def max_decision_latency(self) -> Optional[float]:
        """Worst time to the slowest decision over the batch."""
        return max(self.decision_latencies) if self.decision_latencies else None

    @property
    def mean_lock_hold_time(self) -> Optional[float]:
        """Mean total lock-hold time per run (simulated time units)."""
        if not self.lock_hold_times:
            return None
        return sum(self.lock_hold_times) / len(self.lock_hold_times)

    def summary(self) -> str:
        """One-line report used by the availability bench."""
        latency = self.max_decision_latency
        latency_text = f"{latency:.1f}" if latency is not None else "n/a"
        return (
            f"{self.protocol}: blocking rate {self.blocking_rate:.1%}, "
            f"mean blocked sites {self.mean_blocked_sites:.2f}, "
            f"worst decision latency {latency_text}"
        )


def total_lock_hold_time(result) -> float:
    """Total lock-hold time across sites for one run.

    Locks still held when the run ends (blocked sites) are charged up to the
    run horizon, which is exactly the unavailability a blocked protocol
    inflicts on other transactions.  Engine summaries carry the value
    precomputed (their database sites never leave the worker process).
    """
    db_sites = getattr(result, "db_sites", None)
    if db_sites is None:
        return result.lock_hold_time
    total = 0.0
    for site, db in db_sites.items():
        total += db.locks.stats.total_hold_time
        for (_, _), since in db.locks.stats.held_since.items():
            total += max(0.0, result.finished_at - since)
    return total


def blocking_report(
    results: Iterable[TransactionRunResult],
    *,
    protocol: Optional[str] = None,
) -> BlockingReport:
    """Fold a batch of runs into a :class:`BlockingReport`.

    Accepts full :class:`TransactionRunResult` objects or the engine's
    :class:`~repro.engine.summary.RunSummary` records interchangeably.
    """
    results = list(results)
    name = protocol or (results[0].protocol if results else "unknown")
    report = BlockingReport(protocol=name, total_runs=len(results))
    for result in results:
        if result.blocked:
            report.blocked_runs += 1
        report.blocked_site_count += len(result.blocked_sites)
        if any(result.locks_held_at_end.values()):
            report.runs_with_locks_held_at_end += 1
        report.lock_hold_times.append(total_lock_hold_time(result))
        latency = result.max_decision_latency()
        if latency is not None and not result.blocked:
            report.decision_latencies.append(latency)
    return report
