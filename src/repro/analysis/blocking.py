"""Blocking and lock-retention analysis.

Blocking is the availability failure the paper sets out to remove: a blocked
transaction "cannot relinquish the locks acquired ... rendering those data
inaccessible to other transactions" (Section 2).  The report below measures
how often each protocol blocks and for how long data stays locked, which is
what the AVAIL experiment compares across protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.protocols.runner import TransactionRunResult


@dataclass
class BlockingReport:
    """Blocking statistics over a batch of runs of one protocol.

    The report keeps running aggregates (counts, sums, maxima), never the
    per-run values themselves, so it folds a streamed million-scenario sweep
    in constant memory -- it is the reduction behind the engine's
    :class:`~repro.engine.sink.BlockingSink`.
    """

    protocol: str
    total_runs: int = 0
    blocked_runs: int = 0
    blocked_site_count: int = 0
    runs_with_locks_held_at_end: int = 0
    lock_hold_time_sum: float = 0.0
    lock_hold_samples: int = 0
    decision_latency_sum: float = 0.0
    decision_latency_max: Optional[float] = None
    decision_latency_samples: int = 0

    @property
    def blocking_rate(self) -> float:
        """Fraction of runs with at least one blocked site."""
        return self.blocked_runs / self.total_runs if self.total_runs else 0.0

    @property
    def mean_blocked_sites(self) -> float:
        """Average number of blocked sites per run."""
        return self.blocked_site_count / self.total_runs if self.total_runs else 0.0

    @property
    def mean_decision_latency(self) -> Optional[float]:
        """Mean time to the slowest decision, over runs where everyone decided."""
        if not self.decision_latency_samples:
            return None
        return self.decision_latency_sum / self.decision_latency_samples

    @property
    def max_decision_latency(self) -> Optional[float]:
        """Worst time to the slowest decision over the batch."""
        return self.decision_latency_max

    @property
    def mean_lock_hold_time(self) -> Optional[float]:
        """Mean total lock-hold time per run (simulated time units)."""
        if not self.lock_hold_samples:
            return None
        return self.lock_hold_time_sum / self.lock_hold_samples

    def observe(self, result) -> None:
        """Fold one run (a full result or an engine summary) into the report.

        A report constructed with the ``"unknown"`` placeholder protocol
        takes its name from the first observed run.
        """
        if self.total_runs == 0 and self.protocol == "unknown":
            self.protocol = result.protocol
        self.total_runs += 1
        if result.blocked:
            self.blocked_runs += 1
        self.blocked_site_count += len(result.blocked_sites)
        if any(result.locks_held_at_end.values()):
            self.runs_with_locks_held_at_end += 1
        self.lock_hold_time_sum += total_lock_hold_time(result)
        self.lock_hold_samples += 1
        latency = result.max_decision_latency()
        if latency is not None and not result.blocked:
            self.decision_latency_sum += latency
            self.decision_latency_samples += 1
            if self.decision_latency_max is None or latency > self.decision_latency_max:
                self.decision_latency_max = latency

    def summary(self) -> str:
        """One-line report used by the availability bench."""
        latency = self.max_decision_latency
        latency_text = f"{latency:.1f}" if latency is not None else "n/a"
        return (
            f"{self.protocol}: blocking rate {self.blocking_rate:.1%}, "
            f"mean blocked sites {self.mean_blocked_sites:.2f}, "
            f"worst decision latency {latency_text}"
        )


def total_lock_hold_time(result) -> float:
    """Total lock-hold time across sites for one run.

    Locks still held when the run ends (blocked sites) are charged up to the
    run horizon, which is exactly the unavailability a blocked protocol
    inflicts on other transactions.  Engine summaries carry the value
    precomputed (their database sites never leave the worker process).
    """
    db_sites = getattr(result, "db_sites", None)
    if db_sites is None:
        return result.lock_hold_time
    total = 0.0
    for site, db in db_sites.items():
        total += db.locks.stats.total_hold_time
        for (_, _), since in db.locks.stats.held_since.items():
            total += max(0.0, result.finished_at - since)
    return total


def blocking_report(
    results: Iterable[TransactionRunResult],
    *,
    protocol: Optional[str] = None,
) -> BlockingReport:
    """Fold a batch of runs into a :class:`BlockingReport`.

    Accepts full :class:`TransactionRunResult` objects or the engine's
    :class:`~repro.engine.summary.RunSummary` records interchangeably.
    """
    report = BlockingReport(protocol=protocol or "unknown")
    for result in results:
        report.observe(result)
    return report
