"""Measurement of the paper's timing bounds (Figs. 5, 6, 7 and 9).

The bounds are all expressed in multiples of ``T`` (the longest end-to-end
propagation delay):

* Fig. 5 -- the commit protocol's own timeouts: the master needs at most
  ``2T`` to hear every response to a command, and a slave needs at most
  ``3T`` to hear the master's next command;
* Fig. 6 -- a master that received an undeliverable prepare hears every probe
  it is going to hear within ``5T``;
* Fig. 7 -- a slave that timed out in ``w`` hears a commit within ``6T``;
* Fig. 9 / Section 6 -- a slave that timed out in ``p`` hears an UD(probe),
  a commit or an abort within ``5T`` (except case 3.2.2.2).

Each function measures the corresponding quantity from one run's trace; the
experiments take maxima over scenario sweeps and compare against the bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.protocols.runner import TransactionRunResult
from repro.sim.trace import Trace, TraceRecord


@dataclass(frozen=True)
class TimingMeasurement:
    """A measured worst-case delay compared against a paper bound."""

    name: str
    measured: float
    bound: float
    unit: float  # the value of T used in the run

    @property
    def measured_in_t(self) -> float:
        """The measurement expressed in multiples of T."""
        return self.measured / self.unit if self.unit else math.nan

    @property
    def bound_in_t(self) -> float:
        """The bound expressed in multiples of T."""
        return self.bound / self.unit if self.unit else math.nan

    @property
    def within_bound(self) -> bool:
        """True when the measurement does not exceed the paper's bound."""
        if math.isinf(self.bound):
            return True
        return self.measured <= self.bound + 1e-9

    def __str__(self) -> str:
        return (
            f"{self.name}: measured {self.measured_in_t:.2f}T "
            f"vs bound {self.bound_in_t:.1f}T "
            f"({'ok' if self.within_bound else 'EXCEEDED'})"
        )


def _deliveries(trace: Trace, *, site: Optional[int] = None, payload: Optional[str] = None) -> list[TraceRecord]:
    return trace.filter(
        "deliver",
        site=site,
        predicate=(lambda r: r.get("payload") == payload) if payload else None,
    )


def _sends(trace: Trace, *, site: Optional[int] = None, payload: Optional[str] = None) -> list[TraceRecord]:
    return trace.filter(
        "send",
        site=site,
        predicate=(lambda r: r.get("payload") == payload) if payload else None,
    )


def measure_protocol_timeouts(result: TransactionRunResult) -> dict[str, Optional[float]]:
    """Fig. 5 quantities for one (failure-free) run.

    Returns:
        ``master_round_trip``: longest time between the master issuing a round
        of commands (xact or prepare) and receiving the last response of that
        round; ``slave_wait``: longest time a slave waited between successive
        commands from the master.
    """
    trace = result.trace
    master_round_trip: Optional[float] = None
    # vote round: xact sent by master -> last yes/no delivered to master
    xact_sends = _sends(trace, site=1, payload="xact")
    vote_deliveries = [
        record
        for record in trace.filter("deliver", site=1)
        if record.get("payload") in ("yes", "no")
    ]
    if xact_sends and vote_deliveries:
        master_round_trip = max(r.time for r in vote_deliveries) - min(r.time for r in xact_sends)
    # ack round (3PC-style protocols): prepare/pre-commit sent -> last ack delivered
    prepare_sends = [
        record
        for record in trace.filter("send", site=1)
        if record.get("payload") in ("prepare", "pre-commit")
    ]
    ack_deliveries = [
        record for record in trace.filter("deliver", site=1) if record.get("payload") == "ack"
    ]
    if prepare_sends and ack_deliveries:
        ack_round = max(r.time for r in ack_deliveries) - min(r.time for r in prepare_sends)
        master_round_trip = max(master_round_trip or 0.0, ack_round)

    slave_wait: Optional[float] = None
    for site in result.participants:
        if site == 1:
            continue
        arrivals = [
            record
            for record in trace.filter("deliver", site=site)
            if record.get("source") == 1
        ]
        arrivals.sort(key=lambda record: record.time)
        for earlier, later in zip(arrivals, arrivals[1:]):
            gap = later.time - earlier.time
            slave_wait = gap if slave_wait is None else max(slave_wait, gap)
    return {"master_round_trip": master_round_trip, "slave_wait": slave_wait}


def measure_master_probe_window(result: TransactionRunResult) -> Optional[float]:
    """Fig. 6: time from the master's first UD(prepare) to its last probe.

    Returns ``None`` when the run never opened a probe window or the master
    received no probes at all.
    """
    trace = result.trace
    window_open = trace.first("probe-window-open", site=1)
    if window_open is None:
        return None
    probe_deliveries = [
        record
        for record in trace.filter("deliver", site=1)
        if record.get("payload") == "probe" and record.time >= window_open.time
    ]
    if not probe_deliveries:
        return None
    return max(record.time for record in probe_deliveries) - window_open.time


def measure_wait_after_timeout_in_w(result: TransactionRunResult) -> dict[int, float]:
    """Fig. 7: per-slave wait from its timeout in ``w`` to its decision.

    Slaves that never timed out in ``w`` are absent from the result; slaves
    that timed out and never decided are reported with ``math.inf``.
    """
    waits: dict[int, float] = {}
    for site in result.participants:
        timed_out = result.trace.first("timed-out-in-w", site=site)
        if timed_out is None:
            continue
        decided_at = result.decision_times.get(site)
        if decided_at is None:
            waits[site] = math.inf
        else:
            waits[site] = max(0.0, decided_at - timed_out.time)
    return waits


def measure_wait_after_timeout_in_p(result: TransactionRunResult) -> dict[int, float]:
    """Fig. 9 / Section 6: per-slave wait from its timeout in ``p`` to its decision."""
    waits: dict[int, float] = {}
    for site in result.participants:
        timed_out = result.trace.first("timed-out-in-p", site=site)
        if timed_out is None:
            continue
        decided_at = result.decision_times.get(site)
        if decided_at is None:
            waits[site] = math.inf
        else:
            waits[site] = max(0.0, decided_at - timed_out.time)
    return waits


def worst_case(measurements: Iterable[float]) -> Optional[float]:
    """Maximum of an iterable of waits, or ``None`` when it is empty."""
    values = list(measurements)
    return max(values) if values else None
