"""Atomicity verdicts over batches of scenario runs.

A commit protocol is *resilient* to a class of failures only if it enforces
transaction atomicity and is nonblocking for every failure in the class
(Section 2).  :func:`summarize_runs` turns a batch of
:class:`~repro.protocols.runner.TransactionRunResult` into exactly that
verdict, plus the witnesses needed to understand a failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.protocols.runner import TransactionRunResult


@dataclass
class AtomicityReport:
    """Aggregate verdict over a batch of runs of one protocol."""

    protocol: str
    total_runs: int = 0
    atomicity_violations: int = 0
    blocked_runs: int = 0
    committed_runs: int = 0
    aborted_runs: int = 0
    store_divergences: int = 0
    violation_witnesses: list[str] = field(default_factory=list)
    blocking_witnesses: list[str] = field(default_factory=list)

    @property
    def consistent_runs(self) -> int:
        """Runs that terminated everywhere with a single outcome."""
        return self.total_runs - self.atomicity_violations - self.blocked_runs

    @property
    def resilient(self) -> bool:
        """The Section 2 resilience property over the batch."""
        return self.atomicity_violations == 0 and self.blocked_runs == 0

    @property
    def violation_rate(self) -> float:
        """Fraction of runs that violated atomicity."""
        return self.atomicity_violations / self.total_runs if self.total_runs else 0.0

    @property
    def blocking_rate(self) -> float:
        """Fraction of runs that left at least one site blocked."""
        return self.blocked_runs / self.total_runs if self.total_runs else 0.0

    def summary(self) -> str:
        """One-line verdict used by the benches."""
        verdict = "resilient" if self.resilient else "NOT resilient"
        return (
            f"{self.protocol}: {self.total_runs} runs, "
            f"{self.atomicity_violations} atomicity violations, "
            f"{self.blocked_runs} blocked runs -> {verdict}"
        )

    def observe(self, result, *, max_witnesses: int = 5) -> None:
        """Fold one run (a full result or an engine summary) into the report.

        This is the single-pass reduction behind :func:`summarize_runs`; the
        engine's :class:`~repro.engine.sink.AtomicitySink` calls it once per
        streamed summary, so a million-scenario sweep aggregates in O(1)
        memory.  A report constructed with the ``"unknown"`` placeholder
        protocol takes its name from the first observed run.
        """
        if self.total_runs == 0 and self.protocol == "unknown":
            self.protocol = result.protocol
        self.total_runs += 1
        if result.atomicity_violated:
            self.atomicity_violations += 1
            if len(self.violation_witnesses) < max_witnesses:
                self.violation_witnesses.append(result.summary())
        if result.blocked:
            self.blocked_runs += 1
            if len(self.blocking_witnesses) < max_witnesses:
                self.blocking_witnesses.append(result.summary())
        if result.all_committed:
            self.committed_runs += 1
        if result.all_aborted:
            self.aborted_runs += 1
        if not result.stores_agree:
            self.store_divergences += 1


def check_atomicity(result: TransactionRunResult) -> bool:
    """True when the single run preserved atomicity (no commit/abort mix)."""
    return not result.atomicity_violated


def summarize_runs(
    results: Iterable[TransactionRunResult],
    *,
    protocol: Optional[str] = None,
    max_witnesses: int = 5,
) -> AtomicityReport:
    """Fold a batch of runs into an :class:`AtomicityReport`."""
    report = AtomicityReport(protocol=protocol or "unknown")
    for result in results:
        report.observe(result, max_witnesses=max_witnesses)
    return report
