"""Construction and classification of the Section 6 partition cases.

Section 6 enumerates how a simple partition can interleave with the
three-phase commit protocol (which messages manage to cross the boundary
``B`` before the partition takes effect, and -- for transient partitions --
whether the probes sent later pass).  :func:`build_case_scenario` constructs
a concrete scenario that realizes each case on the simulator, and
:func:`classify_run` classifies an executed run back into the taxonomy from
its trace, so the experiments can verify that the construction produced the
intended case before measuring its worst-case waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.transient import PartitionCase, classify_interleaving
from repro.protocols.runner import ScenarioSpec, TransactionRunResult
from repro.sim.latency import PerLinkLatency
from repro.sim.partition import PartitionSchedule, PartitionSpec

_PROMOTION_PAYLOADS = ("prepare", "pre-commit")


@dataclass(frozen=True)
class CaseScenario:
    """A concrete scenario engineered to realize one Section 6 case."""

    case: PartitionCase
    spec: ScenarioSpec
    description: str

    @property
    def label(self) -> str:
        """The paper's case label (e.g. ``"3.2.2.2"``)."""
        return self.case.label


def _g2_of(result: TransactionRunResult) -> frozenset[int]:
    """The set of sites separated from the master in the run's partition."""
    schedule = result.spec.partition
    if schedule is None or len(schedule) == 0:
        return frozenset()
    first = next(iter(schedule))
    if first.spec is None:
        return frozenset()
    return first.spec.remote_partition(result.transaction.master)


def classify_run(result: TransactionRunResult) -> PartitionCase:
    """Classify an executed run into the Section 6 taxonomy from its trace."""
    g2 = _g2_of(result)
    if not g2:
        # No partition ever separated anyone from the master: trivially the
        # "everything passed B" case.
        return PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS
    trace = result.trace
    prepares_crossed = len(
        trace.filter(
            "deliver",
            predicate=lambda r: r.get("payload") in _PROMOTION_PAYLOADS and r.site in g2,
        )
    )
    prepares_blocked = len(
        trace.filter(
            "bounce",
            predicate=lambda r: r.get("payload") in _PROMOTION_PAYLOADS
            and r.get("destination") in g2,
        )
    )
    acks_blocked = len(
        trace.filter(
            "bounce",
            predicate=lambda r: r.get("payload") == "ack" and r.site in g2,
        )
    )
    commits_blocked = len(
        trace.filter(
            "bounce",
            predicate=lambda r: r.get("payload") == "commit"
            and r.get("destination") in g2
            and r.site == result.transaction.master,
        )
    )
    probes_blocked = len(
        trace.filter(
            "bounce",
            predicate=lambda r: r.get("payload") == "probe" and r.site in g2,
        )
    )
    return classify_interleaving(
        prepares_crossed=prepares_crossed,
        prepares_blocked=prepares_blocked,
        acks_blocked=acks_blocked,
        commits_blocked=commits_blocked,
        probes_blocked=probes_blocked,
    )


def build_case_scenario(case: PartitionCase, *, horizon: float = 80.0) -> CaseScenario:
    """A concrete scenario realizing ``case`` (with ``T = 1``).

    The "some prepare crosses, some does not" cases need two slaves in ``G2``
    with different prepare arrival times, which is arranged with a slower
    link from the master to site 4; the "all prepares cross" cases use a
    three-site configuration.
    """
    slow_link = PerLinkLatency(1.0, {(1, 4): 3.0})
    if case is PartitionCase.NO_PREPARE_CROSSES:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=3,
                partition=PartitionSchedule.simple(2.5, [1, 2], [3]),
                horizon=horizon,
            ),
            "partition cuts the only prepare addressed to G2",
        )
    if case is PartitionCase.SOME_PREPARE_SOME_NOT_ACK_LOST:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=4,
                latency=PerLinkLatency(1.0, {(1, 4): 1.5}),
                partition=PartitionSchedule.simple(3.7, [1, 2], [3, 4]),
                horizon=horizon,
            ),
            "site 3's prepare crossed B, its ack is cut; site 4's prepare is cut",
        )
    if case is PartitionCase.SOME_PREPARE_PROBE_LOST:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=4,
                latency=slow_link,
                partition=PartitionSchedule.simple(6.5, [1, 2], [3, 4]),
                horizon=horizon,
            ),
            "site 3's prepare and ack crossed B; site 4's prepare is cut; "
            "the partition persists so site 3's probe bounces",
        )
    if case is PartitionCase.SOME_PREPARE_PROBES_PASS:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=4,
                latency=slow_link,
                partition=PartitionSchedule.transient(6.5, 7.5, [1, 2], [3, 4]),
                horizon=horizon,
            ),
            "as case 2.2.1 but the network heals before site 3 probes",
        )
    if case is PartitionCase.ALL_PREPARE_ACK_LOST:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=3,
                partition=PartitionSchedule.simple(3.5, [1, 2], [3]),
                horizon=horizon,
            ),
            "every prepare crossed B; site 3's ack is cut",
        )
    if case is PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=3,
                partition=PartitionSchedule.simple(5.5, [1, 2], [3]),
                horizon=horizon,
            ),
            "the partition strikes after every commit was delivered",
        )
    if case is PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBE_LOST:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=3,
                partition=PartitionSchedule.simple(4.5, [1, 2], [3]),
                horizon=horizon,
            ),
            "site 3's commit is cut and the partition persists, so its probe bounces",
        )
    if case is PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS:
        return CaseScenario(
            case,
            ScenarioSpec(
                n_sites=3,
                partition=PartitionSchedule.transient(4.5, 5.5, [1, 2], [3]),
                horizon=horizon,
            ),
            "site 3's commit is cut but the network heals before it probes",
        )
    raise ValueError(f"unknown partition case: {case}")


def section6_cases() -> list[CaseScenario]:
    """Concrete scenarios for every case of the Section 6 enumeration."""
    return [build_case_scenario(case) for case in PartitionCase]
