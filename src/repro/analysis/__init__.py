"""Analysis of protocol executions.

* :mod:`repro.analysis.atomicity` -- atomicity / consistency verdicts over
  batches of runs (the Theorem 9 property);
* :mod:`repro.analysis.blocking` -- blocking and lock-retention analysis (the
  availability motivation of Sections 1-2);
* :mod:`repro.analysis.timing` -- measurement of the paper's timing bounds
  (Figs. 5, 6, 7 and 9) from execution traces;
* :mod:`repro.analysis.scenarios` -- systematic partition-scenario
  generation (sweeps over partition time, split and votes);
* :mod:`repro.analysis.cases` -- construction and classification of the
  Section 6 transient-partitioning cases.
"""

from repro.analysis.atomicity import AtomicityReport, check_atomicity, summarize_runs
from repro.analysis.blocking import BlockingReport, blocking_report
from repro.analysis.cases import CaseScenario, build_case_scenario, classify_run, section6_cases
from repro.analysis.scenarios import (
    ScenarioGrid,
    partition_sweep,
    simple_partition_schedules,
    split_choices,
)
from repro.analysis.timing import (
    TimingMeasurement,
    measure_master_probe_window,
    measure_protocol_timeouts,
    measure_wait_after_timeout_in_p,
    measure_wait_after_timeout_in_w,
)

__all__ = [
    "AtomicityReport",
    "BlockingReport",
    "CaseScenario",
    "ScenarioGrid",
    "TimingMeasurement",
    "blocking_report",
    "build_case_scenario",
    "check_atomicity",
    "classify_run",
    "measure_master_probe_window",
    "measure_protocol_timeouts",
    "measure_wait_after_timeout_in_p",
    "measure_wait_after_timeout_in_w",
    "partition_sweep",
    "section6_cases",
    "simple_partition_schedules",
    "split_choices",
    "summarize_runs",
]
