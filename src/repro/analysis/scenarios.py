"""Systematic partition-scenario generation.

The correctness arguments of the paper (Theorem 9 in particular) quantify
over *when* the partition strikes and *which* sites it separates.  The
generators below enumerate those dimensions so the experiments can sweep
them exhaustively on concrete configurations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.protocols.runner import ScenarioSpec
from repro.sim.partition import PartitionSchedule


def split_choices(n_sites: int, *, master: int = 1) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Every simple partition split of sites ``1..n`` as ``(G1, G2)`` pairs.

    ``G1`` always contains the master; ``G2`` is every non-empty subset of the
    slaves (taking complements would only swap the labels).
    """
    sites = list(range(1, n_sites + 1))
    slaves = [site for site in sites if site != master]
    splits = []
    for size in range(1, len(slaves) + 1):
        for combo in itertools.combinations(slaves, size):
            g2 = tuple(sorted(combo))
            g1 = tuple(sorted(set(sites) - set(combo)))
            splits.append((g1, g2))
    return splits


def default_partition_times(max_delay: float = 1.0, *, resolution: float = 0.25, horizon: float = 8.0) -> list[float]:
    """A grid of partition onset times covering the whole protocol execution.

    The grid is offset from the message-delivery instants (multiples of ``T``)
    so that both "partition just before delivery" and "just after delivery"
    orderings are exercised.
    """
    steps = int(horizon / resolution)
    return [round((i + 1) * resolution * max_delay, 6) for i in range(steps)]


def simple_partition_schedules(
    n_sites: int,
    *,
    times: Optional[Sequence[float]] = None,
    heal_after: Optional[float] = None,
    max_delay: float = 1.0,
) -> list[PartitionSchedule]:
    """Every (onset time x simple split) partition schedule for ``n_sites``.

    This is the single owner of the Theorem 9 sweep axis: the grid below and
    the engine's :func:`repro.engine.grid.simple_partition_axis` both
    enumerate through it (onset time outermost, split innermost).  With
    ``heal_after`` set the partitions are transient (Section 6); otherwise
    they are permanent (Section 5's assumption 5).
    """
    onset_times = (
        list(times) if times is not None else default_partition_times(max_delay)
    )
    schedules = []
    for at in onset_times:
        for g1, g2 in split_choices(n_sites):
            if heal_after is None:
                schedules.append(PartitionSchedule.simple(at, g1, g2))
            else:
                schedules.append(
                    PartitionSchedule.transient(at, at + heal_after, g1, g2)
                )
    return schedules


@dataclass
class ScenarioGrid:
    """A cartesian grid of partition scenarios for one configuration.

    This is the spec-level grid (partition dimensions only); the engine's
    :class:`repro.engine.grid.ScenarioGrid` generalizes it with protocol,
    crash, latency, model and seed axes.

    Attributes:
        n_sites: number of participating sites.
        partition_times: onset times to sweep.
        heal_after: if set, every partition heals this long after onset
            (transient partitioning); ``None`` means permanent partitions.
        no_voter_options: vote patterns to sweep.
        horizon: run horizon passed to every generated spec.
    """

    n_sites: int = 3
    partition_times: Optional[Sequence[float]] = None
    heal_after: Optional[float] = None
    no_voter_options: Sequence[frozenset[int]] = (frozenset(),)
    horizon: Optional[float] = None
    base_spec: ScenarioSpec = field(default_factory=ScenarioSpec)

    def _schedules(self) -> list[PartitionSchedule]:
        return simple_partition_schedules(
            self.n_sites,
            times=self.partition_times,
            heal_after=self.heal_after,
            max_delay=self.base_spec.effective_latency().upper_bound,
        )

    def specs(self) -> Iterator[ScenarioSpec]:
        """Yield one :class:`ScenarioSpec` per grid point."""
        for partition in self._schedules():
            for no_voters in self.no_voter_options:
                yield ScenarioSpec(
                    **{
                        **self.base_spec.__dict__,
                        "n_sites": self.n_sites,
                        "partition": partition,
                        "no_voters": no_voters,
                        "horizon": self.horizon or self.base_spec.horizon,
                    }
                )

    def __len__(self) -> int:
        return len(self._schedules()) * len(list(self.no_voter_options))


def partition_sweep(
    n_sites: int,
    *,
    times: Optional[Iterable[float]] = None,
    heal_after: Optional[float] = None,
    no_voter_options: Sequence[frozenset[int]] = (frozenset(),),
    horizon: Optional[float] = None,
) -> list[ScenarioSpec]:
    """Convenience wrapper returning the grid's specs as a list."""
    grid = ScenarioGrid(
        n_sites=n_sites,
        partition_times=list(times) if times is not None else None,
        heal_after=heal_after,
        no_voter_options=no_voter_options,
        horizon=horizon,
    )
    return list(grid.specs())
