"""FIFO wait-queue semantics of the lock manager (the scheduler substrate)."""

import pytest
from hypothesis import given, strategies as st

from repro.db.locks import LockManager, LockMode


def manager():
    return LockManager(site=1)


class TestImmediateGrants:
    def test_request_free_key_grants_immediately(self):
        locks = manager()
        request = locks.request("t1", "x", LockMode.EXCLUSIVE, now=2.0)
        assert request.granted is not None
        assert request.wait_time == 0.0
        assert locks.holds("t1", "x")

    def test_compatible_shared_requests_grant_together(self):
        locks = manager()
        assert locks.request("t1", "x", LockMode.SHARED).granted is not None
        assert locks.request("t2", "x", LockMode.SHARED).granted is not None

    def test_reentrant_request_returns_existing_grant(self):
        locks = manager()
        first = locks.request("t1", "x", LockMode.EXCLUSIVE)
        again = locks.request("t1", "x", LockMode.SHARED)
        assert again.granted is first.granted


class TestQueueing:
    def test_conflicting_request_queues_instead_of_raising(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        request = locks.request("t2", "x", LockMode.EXCLUSIVE, now=1.0)
        assert request.pending
        assert locks.queued("x") == (request,)
        assert locks.pending_owners() == {"t2"}

    def test_release_promotes_fifo_order(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        first = locks.request("t2", "x", LockMode.EXCLUSIVE)
        second = locks.request("t3", "x", LockMode.EXCLUSIVE)
        locks.release_all("t1")
        assert first.granted is not None
        assert second.pending
        locks.release_all("t2")
        assert second.granted is not None

    def test_shared_group_promotes_together_but_not_past_a_writer(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        r2 = locks.request("t2", "x", LockMode.SHARED)
        r3 = locks.request("t3", "x", LockMode.SHARED)
        r4 = locks.request("t4", "x", LockMode.EXCLUSIVE)
        r5 = locks.request("t5", "x", LockMode.SHARED)
        locks.release_all("t1")
        assert r2.granted is not None and r3.granted is not None
        assert r4.pending and r5.pending  # the late reader cannot pass the writer

    def test_no_barging_past_a_queued_writer(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.SHARED)
        writer = locks.request("t2", "x", LockMode.EXCLUSIVE)
        # A new reader is compatible with the *holder* but must not
        # overtake the queued writer (writers would starve).
        reader = locks.request("t3", "x", LockMode.SHARED)
        assert writer.pending and reader.pending
        locks.release_all("t1")
        assert writer.granted is not None
        assert reader.pending

    def test_acquire_respects_the_queue_too(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.SHARED)
        locks.request("t2", "x", LockMode.EXCLUSIVE)
        with pytest.raises(Exception):
            locks.acquire("t3", "x", LockMode.SHARED)

    def test_wait_time_recorded_at_grant(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE, now=0.0)
        request = locks.request("t2", "x", LockMode.EXCLUSIVE, now=1.0)
        locks.release_all("t1", now=4.5)
        assert request.granted_at == 4.5
        assert request.wait_time == 3.5
        assert locks.stats.wait_time_total == 3.5

    def test_on_grant_callback_fires_per_promotion(self):
        locks = manager()
        granted = []
        locks.on_grant = granted.append
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        r2 = locks.request("t2", "x", LockMode.SHARED)
        r3 = locks.request("t3", "x", LockMode.SHARED)
        assert granted == []
        locks.release_all("t1")
        assert granted == [r2, r3]

    def test_cancel_unblocks_the_queue(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.SHARED)
        writer = locks.request("t2", "x", LockMode.EXCLUSIVE)
        reader = locks.request("t3", "x", LockMode.SHARED)
        locks.cancel(writer)
        assert reader.granted is not None


class TestCrashSemantics:
    def test_cancel_all_pending_never_promotes(self):
        locks = manager()
        granted = []
        locks.on_grant = granted.append
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        blocked = locks.request("t2", "x", LockMode.EXCLUSIVE)
        assert locks.cancel_all_pending() == 1
        assert blocked.cancelled
        assert granted == []  # a dying table must not hand out grants

    def test_site_crash_preserves_the_grant_callback(self):
        from repro.db.site import DatabaseSite

        site = DatabaseSite(1)
        granted = []
        site.locks.on_grant = granted.append
        site.crash()
        site.recover()
        site.locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        request = site.locks.request("t2", "x", LockMode.EXCLUSIVE)
        site.locks.release_all("t1")
        assert granted == [request]  # scheduler wiring survives the crash


class TestUpgradesInQueue:
    def test_upgrade_waits_for_other_holders_only(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.SHARED)
        locks.acquire("t2", "x", LockMode.SHARED)
        newcomer = locks.request("t3", "x", LockMode.EXCLUSIVE)
        upgrade = locks.request("t1", "x", LockMode.EXCLUSIVE)
        assert upgrade.pending and upgrade.upgrade
        locks.release_all("t2")
        # The upgrade outranks the queued newcomer.
        assert upgrade.granted is not None
        assert upgrade.granted.mode is LockMode.EXCLUSIVE
        assert newcomer.pending

    def test_cancelled_entries_do_not_skew_upgrade_insertion_order(self):
        # t1..t4 hold shared and queue upgrades in order; t2's is cancelled
        # in place (e.g. a lock-wait timeout) while the queue stays blocked.
        # A later upgrade (t4) must land *behind* every older pending
        # upgrade -- a stale cancelled entry must not skew the index.
        locks = manager()
        for owner in ("t1", "t2", "t3", "t4", "t5"):
            locks.acquire(owner, "x", LockMode.SHARED)
        up1 = locks.request("t1", "x", LockMode.EXCLUSIVE)
        up2 = locks.request("t2", "x", LockMode.EXCLUSIVE)
        up3 = locks.request("t3", "x", LockMode.EXCLUSIVE)
        up2.cancelled = True  # settled in place, not compacted by promotion
        up4 = locks.request("t4", "x", LockMode.EXCLUSIVE)
        assert locks.queued("x") == (up1, up3, up4)

    def test_two_upgraders_form_a_waits_for_cycle(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.SHARED)
        locks.acquire("t2", "x", LockMode.SHARED)
        locks.request("t1", "x", LockMode.EXCLUSIVE)
        locks.request("t2", "x", LockMode.EXCLUSIVE)
        edges = locks.waits_for()
        assert "t2" in edges["t1"] and "t1" in edges["t2"]


class TestWaitsFor:
    def test_edges_point_at_conflicting_holders(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.request("t2", "x", LockMode.EXCLUSIVE)
        assert locks.waits_for() == {"t2": {"t1"}}

    def test_edges_point_at_earlier_queued_owners(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.request("t2", "x", LockMode.EXCLUSIVE)
        locks.request("t3", "x", LockMode.EXCLUSIVE)
        edges = locks.waits_for()
        assert edges["t3"] == {"t1", "t2"}

    def test_no_pending_requests_no_edges(self):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert locks.waits_for() == {}

    def test_shared_group_members_do_not_wait_on_each_other(self):
        # tB and tC queue shared behind an exclusive holder: they will be
        # granted *together*, so no edge may join them (a spurious edge
        # here lets the deadlock detector abort an innocent group member).
        locks = manager()
        locks.acquire("tA", "x", LockMode.EXCLUSIVE)
        locks.request("tB", "x", LockMode.SHARED)
        locks.request("tC", "x", LockMode.SHARED)
        edges = locks.waits_for()
        assert edges["tB"] == {"tA"}
        assert edges["tC"] == {"tA"}

    def test_shared_request_still_waits_on_queued_writer(self):
        locks = manager()
        locks.acquire("tA", "x", LockMode.SHARED)
        locks.request("tW", "x", LockMode.EXCLUSIVE)
        locks.request("tC", "x", LockMode.SHARED)
        edges = locks.waits_for()
        assert "tW" in edges["tC"]  # the reader must outwait the older writer


class TestQueueProperties:
    @given(st.lists(st.integers(min_value=2, max_value=9), min_size=1, max_size=8))
    def test_property_exclusive_queue_drains_in_fifo_order(self, owners):
        locks = manager()
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        requests = [
            locks.request(f"t{owner}-{i}", "x", LockMode.EXCLUSIVE)
            for i, owner in enumerate(owners)
        ]
        order = []
        locks.on_grant = lambda r: order.append(r)
        previous = "t1"
        for expected in requests:
            locks.release_all(previous)
            assert order[-1] is expected
            previous = expected.owner
        locks.release_all(previous)
        assert len(locks) == 0 and not locks.pending_owners()
