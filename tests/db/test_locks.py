"""Tests for the lock manager."""

import pytest
from hypothesis import given, strategies as st

from repro.db.locks import LockConflict, LockManager, LockMode


class TestCompatibility:
    def test_shared_shared_compatible(self):
        assert LockMode.SHARED.compatible_with(LockMode.SHARED)

    def test_exclusive_conflicts_with_everything(self):
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.SHARED)
        assert not LockMode.SHARED.compatible_with(LockMode.EXCLUSIVE)
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.EXCLUSIVE)


class TestAcquireRelease:
    def test_acquire_grants_lock(self):
        locks = LockManager(site=1)
        grant = locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert grant.owner == "t1"
        assert locks.holds("t1", "x")

    def test_two_readers_share(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        locks.acquire("t2", "x", LockMode.SHARED)
        assert len(locks.holders("x")) == 2

    def test_writer_blocks_writer(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflict) as excinfo:
            locks.acquire("t2", "x", LockMode.EXCLUSIVE)
        assert excinfo.value.key == "x"
        assert excinfo.value.holder == "t1"

    def test_writer_blocks_reader(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflict):
            locks.acquire("t2", "x", LockMode.SHARED)

    def test_reader_blocks_writer(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        with pytest.raises(LockConflict):
            locks.acquire("t2", "x", LockMode.EXCLUSIVE)

    def test_reacquire_same_mode_is_noop(self):
        locks = LockManager(site=1)
        first = locks.acquire("t1", "x", LockMode.SHARED)
        second = locks.acquire("t1", "x", LockMode.SHARED)
        assert first is second

    def test_upgrade_allowed_when_sole_holder(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        grant = locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert grant.mode is LockMode.EXCLUSIVE

    def test_upgrade_denied_with_other_readers(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        locks.acquire("t2", "x", LockMode.SHARED)
        with pytest.raises(LockConflict):
            locks.acquire("t1", "x", LockMode.EXCLUSIVE)

    def test_exclusive_holder_absorbs_shared_request(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        grant = locks.acquire("t1", "x", LockMode.SHARED)
        assert grant.mode is LockMode.EXCLUSIVE

    def test_try_acquire_returns_none_on_conflict(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert locks.try_acquire("t2", "x", LockMode.SHARED) is None
        assert locks.try_acquire("t2", "y", LockMode.SHARED) is not None

    def test_release_all_frees_every_key(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.acquire("t1", "y", LockMode.SHARED)
        released = locks.release_all("t1")
        assert released == 2
        assert locks.locked_keys() == []
        assert "t1" not in locks.owners()

    def test_release_all_leaves_other_owners(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        locks.acquire("t2", "x", LockMode.SHARED)
        locks.release_all("t1")
        assert locks.holds("t2", "x")
        assert not locks.holds("t1", "x")

    def test_release_unknown_owner_is_noop(self):
        locks = LockManager(site=1)
        assert locks.release_all("ghost") == 0


class TestQueriesAndStats:
    def test_is_available(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        assert locks.is_available("x", LockMode.SHARED)
        assert not locks.is_available("x", LockMode.EXCLUSIVE)
        assert locks.is_available("x", LockMode.EXCLUSIVE, owner="t1")

    def test_len_counts_grants(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        locks.acquire("t2", "x", LockMode.SHARED)
        locks.acquire("t1", "y", LockMode.EXCLUSIVE)
        assert len(locks) == 3

    def test_conflict_and_grant_stats(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)
        assert locks.stats.grants == 1
        assert locks.stats.conflicts == 1

    def test_hold_time_accumulates_on_release(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE, now=2.0)
        locks.release_all("t1", now=7.0)
        assert locks.stats.total_hold_time == 5.0

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=8, unique=True))
    def test_property_release_returns_number_of_keys_held(self, keys):
        locks = LockManager(site=1)
        for key in keys:
            locks.acquire("t", key, LockMode.EXCLUSIVE)
        assert locks.release_all("t") == len(keys)
        assert len(locks) == 0


class TestEdgeCases:
    """The scheduler-driven edge semantics: upgrades, double release,
    release-while-queued (correct stand-alone, required by repro.txn)."""

    def test_upgrade_by_sole_shared_holder_survives_queued_waiters(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        queued = locks.request("t2", "x", LockMode.EXCLUSIVE)
        assert queued.pending
        # t1 is still the only *holder*: the upgrade must not deadlock
        # against t2's queue position.
        grant = locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert grant.mode is LockMode.EXCLUSIVE
        assert queued.pending  # t2 keeps waiting for the (now exclusive) holder

    def test_upgrade_keeps_original_hold_time_origin(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED, now=1.0)
        upgraded = locks.acquire("t1", "x", LockMode.EXCLUSIVE, now=3.0)
        assert upgraded.granted_at == 1.0
        locks.release_all("t1", now=5.0)
        assert locks.stats.total_hold_time == 4.0

    def test_double_release_all_is_a_noop(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE, now=1.0)
        assert locks.release_all("t1", now=2.0) == 1
        assert locks.release_all("t1", now=3.0) == 0
        assert locks.stats.releases == 1
        assert locks.stats.total_hold_time == 1.0

    def test_double_release_single_key_is_a_noop(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        assert locks.release("t1", "x") is True
        assert locks.release("t1", "x") is False
        assert locks.release("t1", "never-held") is False

    def test_release_while_queued_cancels_the_request(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.EXCLUSIVE)
        queued = locks.request("t2", "x", LockMode.SHARED)
        assert queued.pending
        locks.release_all("t2")  # t2 aborts while waiting
        assert queued.cancelled
        assert not locks.queued("x")
        locks.release_all("t1")
        assert queued.granted is None  # never granted after cancellation

    def test_release_while_queued_unblocks_the_queue_behind(self):
        locks = LockManager(site=1)
        locks.acquire("t1", "x", LockMode.SHARED)
        blocked_writer = locks.request("t2", "x", LockMode.EXCLUSIVE)
        blocked_reader = locks.request("t3", "x", LockMode.SHARED)
        assert blocked_writer.pending and blocked_reader.pending
        # The writer gives up; the reader is now compatible with the holder.
        locks.release_all("t2")
        assert blocked_reader.granted is not None
        assert locks.holds("t3", "x")
