"""Tests for transaction descriptors."""

import pytest

from repro.db.transactions import Operation, OpKind, Transaction, TransactionStatus


class TestOperation:
    def test_read_factory(self):
        op = Operation.read(2, "x")
        assert op.kind is OpKind.READ
        assert op.site == 2
        assert op.value is None

    def test_write_factory(self):
        op = Operation.write(3, "y", 42)
        assert op.kind is OpKind.WRITE
        assert op.value == 42

    def test_read_with_value_rejected(self):
        with pytest.raises(ValueError):
            Operation(site=1, kind=OpKind.READ, key="x", value=1)


class TestTransaction:
    def test_create_generates_unique_ids(self):
        a = Transaction.create(1)
        b = Transaction.create(1)
        assert a.transaction_id != b.transaction_id

    def test_explicit_id_respected(self):
        txn = Transaction.create(1, transaction_id="my-txn")
        assert txn.transaction_id == "my-txn"

    def test_participants_include_master(self):
        txn = Transaction.create(1, [Operation.write(2, "x", 1), Operation.write(3, "x", 1)])
        assert txn.participants == (1, 2, 3)
        assert txn.slaves == (2, 3)

    def test_simple_update_touches_all_participants(self):
        txn = Transaction.simple_update(1, [1, 2, 3], "balance", 100)
        assert txn.participants == (1, 2, 3)
        for site in (1, 2, 3):
            assert txn.writes_at(site) == {"balance": 100}

    def test_writes_at_only_returns_writes(self):
        txn = Transaction.create(
            1, [Operation.read(2, "a"), Operation.write(2, "b", 5)]
        )
        assert txn.writes_at(2) == {"b": 5}
        assert txn.read_keys_at(2) == ("a",)
        assert txn.keys_at(2) == ("a", "b")

    def test_operations_at_filters_by_site(self):
        txn = Transaction.create(
            1, [Operation.write(2, "x", 1), Operation.write(3, "y", 2)]
        )
        assert len(txn.operations_at(2)) == 1
        assert len(txn.operations_at(3)) == 1
        assert txn.operations_at(4) == ()

    def test_str_mentions_id_and_master(self):
        txn = Transaction.create(1, transaction_id="t9")
        assert "t9" in str(txn)
        assert "master=1" in str(txn)


class TestTransactionStatus:
    def test_status_values(self):
        assert TransactionStatus.COMMITTED.value == "committed"
        assert TransactionStatus.BLOCKED.value == "blocked"
