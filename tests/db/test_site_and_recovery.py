"""Tests for the database site and crash recovery."""

import pytest
from hypothesis import given, strategies as st

from repro.db.recovery import RecoveryManager
from repro.db.site import DatabaseSite, SiteState
from repro.db.storage import KeyValueStore
from repro.db.transactions import Operation, Transaction, TransactionStatus
from repro.db.wal import WriteAheadLog


def update_txn(txn_id="t1", value=100):
    return Transaction.simple_update(1, [1, 2], "balance", value, transaction_id=txn_id)


class TestExecuteAndVote:
    def test_execute_votes_yes_and_acquires_locks(self):
        site = DatabaseSite(1)
        vote = site.execute(update_txn(), now=0.0)
        assert vote == "yes"
        assert site.holds_locks("t1")
        assert site.vote("t1") == "yes"

    def test_execute_votes_no_on_lock_conflict(self):
        site = DatabaseSite(1)
        site.execute(update_txn("t1"))
        vote = site.execute(update_txn("t2"))
        assert vote == "no"
        assert not site.holds_locks("t2")

    def test_execute_records_begin_and_vote_in_wal(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        kinds = [record.kind.value for record in site.wal]
        assert kinds == ["begin", "vote"]

    def test_execute_with_reads_takes_shared_locks(self):
        site = DatabaseSite(2, initial_data={"x": 1})
        txn = Transaction.create(1, [Operation.read(2, "x")], transaction_id="r1")
        assert site.execute(txn) == "yes"
        assert site.holds_locks("r1")

    def test_execute_after_decision_rejected(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.commit("t1")
        with pytest.raises(ValueError):
            site.execute(update_txn("t1"))


class TestCommitAbort:
    def test_commit_applies_writes_and_releases_locks(self):
        site = DatabaseSite(1)
        site.execute(update_txn(value=250))
        site.commit("t1", now=3.0)
        assert site.value("balance") == 250
        assert not site.holds_locks("t1")
        assert site.decision("t1") == "commit"
        assert site.status("t1") is TransactionStatus.COMMITTED

    def test_abort_discards_writes_and_releases_locks(self):
        site = DatabaseSite(1, initial_data={"balance": 10})
        site.execute(update_txn(value=999))
        site.abort("t1")
        assert site.value("balance") == 10
        assert not site.holds_locks("t1")
        assert site.decision("t1") == "abort"

    def test_commit_is_idempotent(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.commit("t1")
        site.commit("t1")
        assert site.decision("t1") == "commit"

    def test_abort_is_idempotent(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.abort("t1")
        site.abort("t1")
        assert site.decision("t1") == "abort"

    def test_commit_after_abort_raises(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.abort("t1")
        with pytest.raises(ValueError):
            site.commit("t1")

    def test_abort_after_commit_raises(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.commit("t1")
        with pytest.raises(ValueError):
            site.abort("t1")

    def test_abort_without_execute_is_recorded(self):
        """A site may be told to abort a transaction it never voted on."""
        site = DatabaseSite(1)
        site.abort("ghost")
        assert site.decision("ghost") == "abort"

    def test_commit_without_execute_is_a_stale_no_op(self):
        # At-least-once delivery: a duplicated or retransmitted COMMIT can
        # arrive after a crash wiped the volatile transaction state.  It
        # must neither crash nor record a decision (recovery owns that).
        site = DatabaseSite(1)
        site.commit("ghost")
        assert site.decision("ghost") is None
        assert site.wal.prepared_writes("ghost") is None

    def test_mark_blocked(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.mark_blocked("t1", now=4.0)
        assert site.status("t1") is TransactionStatus.BLOCKED
        # locks are retained while blocked -- the paper's availability cost
        assert site.holds_locks("t1")


class TestPrepare:
    def test_prepare_journals_writes(self):
        site = DatabaseSite(1)
        site.execute(update_txn(value=77))
        site.prepare("t1", now=1.0)
        assert site.wal.prepared_writes("t1") == {"balance": 77}
        assert site.status("t1") is TransactionStatus.PREPARED

    def test_prepare_unknown_transaction_is_a_stale_no_op(self):
        site = DatabaseSite(1)
        site.prepare("nope")
        assert site.status("nope") is None
        assert site.wal.prepared_writes("nope") is None


class TestCrashRecovery:
    def test_crash_loses_volatile_state(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.crash()
        assert site.state is SiteState.CRASHED
        assert not site.holds_locks("t1")
        with pytest.raises(RuntimeError):
            site.execute(update_txn("t2"))

    def test_recover_redoes_committed_transaction(self):
        site = DatabaseSite(1)
        site.execute(update_txn(value=500))
        site.wal.log_commit("t1", {"balance": 500})  # decision durable...
        site.crash()  # ...but crash before apply
        report = site.recover()
        assert "t1" in report.redone
        assert site.value("balance") == 500
        assert site.decision("t1") == "commit"

    def test_recover_reports_aborted_transaction(self):
        site = DatabaseSite(1, initial_data={"balance": 1})
        site.execute(update_txn(value=2))
        site.wal.log_abort("t1")
        site.crash()
        report = site.recover()
        assert "t1" in report.aborted
        assert site.value("balance") == 1

    def test_recover_leaves_undecided_transaction_in_doubt(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.prepare("t1")
        site.crash()
        report = site.recover()
        assert report.in_doubt == ["t1"]
        assert site.decision("t1") is None

    def test_recover_after_full_commit_reports_already_applied(self):
        site = DatabaseSite(1)
        site.execute(update_txn(value=5))
        site.commit("t1")
        site.crash()
        report = site.recover()
        assert report.already_applied == ["t1"]
        assert site.value("balance") == 5

    def test_redo_is_idempotent_across_repeated_recoveries(self):
        site = DatabaseSite(1)
        site.execute(update_txn(value=123))
        site.wal.log_commit("t1", {"balance": 123})
        site.crash()
        site.recover()
        site.crash()
        report = site.recover()
        assert report.already_applied == ["t1"]
        assert site.value("balance") == 123

    def test_report_total(self):
        site = DatabaseSite(1)
        site.execute(update_txn())
        site.wal.log_commit("t1", {"balance": 100})
        site.crash()
        report = site.recover()
        assert report.total_transactions == 1


class TestRecoveryManagerDirect:
    def test_needs_redo(self):
        wal = WriteAheadLog(1)
        store = KeyValueStore()
        manager = RecoveryManager(1, wal, store)
        wal.log_commit("t1", {"x": 1})
        assert manager.needs_redo("t1")
        store.apply("t1", {"x": 1})
        assert not manager.needs_redo("t1")
        assert not manager.needs_redo("unknown")

    def test_in_doubt_transactions(self):
        wal = WriteAheadLog(1)
        manager = RecoveryManager(1, wal, KeyValueStore())
        wal.log_begin("a")
        wal.log_commit("b", {})
        assert manager.in_doubt_transactions() == ["a"]

    @given(st.dictionaries(st.sampled_from(["k1", "k2", "k3"]), st.integers(), min_size=1))
    def test_property_recover_then_recover_is_stable(self, writes):
        wal = WriteAheadLog(1)
        store = KeyValueStore()
        manager = RecoveryManager(1, wal, store)
        wal.log_prepare("t", writes)
        wal.log_commit("t", writes)
        manager.recover()
        first = store.snapshot()
        manager.recover()
        assert store.snapshot() == first
