"""Tests for the write-ahead log."""

from repro.db.wal import LogRecordKind, WriteAheadLog


class TestAppends:
    def test_lsn_increases(self):
        wal = WriteAheadLog(site=1)
        r1 = wal.log_begin("t1")
        r2 = wal.log_vote("t1", "yes")
        assert (r1.lsn, r2.lsn) == (1, 2)

    def test_records_by_transaction(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("t1")
        wal.log_begin("t2")
        wal.log_vote("t1", "yes")
        assert [r.kind for r in wal.records("t1")] == [LogRecordKind.BEGIN, LogRecordKind.VOTE]
        assert len(wal.records()) == 3

    def test_last_record(self):
        wal = WriteAheadLog(site=1)
        assert wal.last_record("t1") is None
        wal.log_begin("t1")
        wal.log_vote("t1", "no")
        assert wal.last_record("t1").kind is LogRecordKind.VOTE

    def test_payload_accessor(self):
        wal = WriteAheadLog(site=1)
        record = wal.log_vote("t1", "yes", time=2.0)
        assert record.get("vote") == "yes"
        assert record.get("missing", "x") == "x"
        assert record.time == 2.0


class TestDecisions:
    def test_no_decision_initially(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("t1")
        assert wal.decision("t1") is None

    def test_commit_decision(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("t1")
        wal.log_commit("t1", {"x": 1})
        assert wal.decision("t1") == "commit"

    def test_abort_decision(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("t1")
        wal.log_abort("t1")
        assert wal.decision("t1") == "abort"

    def test_decision_is_per_transaction(self):
        wal = WriteAheadLog(site=1)
        wal.log_commit("t1", {})
        wal.log_abort("t2")
        assert wal.decision("t1") == "commit"
        assert wal.decision("t2") == "abort"

    def test_was_applied(self):
        wal = WriteAheadLog(site=1)
        wal.log_commit("t1", {"x": 1})
        assert not wal.was_applied("t1")
        wal.log_apply("t1")
        assert wal.was_applied("t1")


class TestPreparedWrites:
    def test_prepared_writes_from_prepare_record(self):
        wal = WriteAheadLog(site=1)
        wal.log_prepare("t1", {"x": 5})
        assert wal.prepared_writes("t1") == {"x": 5}

    def test_prepared_writes_from_commit_record(self):
        wal = WriteAheadLog(site=1)
        wal.log_commit("t1", {"y": 9})
        assert wal.prepared_writes("t1") == {"y": 9}

    def test_prepared_writes_missing(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("t1")
        assert wal.prepared_writes("t1") is None

    def test_latest_writes_win(self):
        wal = WriteAheadLog(site=1)
        wal.log_prepare("t1", {"x": 1})
        wal.log_commit("t1", {"x": 2})
        assert wal.prepared_writes("t1") == {"x": 2}


class TestInventory:
    def test_transactions_in_first_seen_order(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("b")
        wal.log_begin("a")
        wal.log_vote("b", "yes")
        assert wal.transactions() == ["b", "a"]

    def test_undecided_transactions(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("t1")
        wal.log_begin("t2")
        wal.log_commit("t1", {})
        assert wal.undecided_transactions() == ["t2"]

    def test_len_and_iter(self):
        wal = WriteAheadLog(site=1)
        wal.log_begin("t1")
        wal.log_vote("t1", "yes")
        assert len(wal) == 2
        assert [r.kind for r in wal] == [LogRecordKind.BEGIN, LogRecordKind.VOTE]
