"""Tests for the versioned key-value store."""

from hypothesis import given, strategies as st

from repro.db.storage import KeyValueStore


class TestBasicOperations:
    def test_empty_store(self):
        store = KeyValueStore()
        assert len(store) == 0
        assert store.get("x") is None
        assert store.get("x", 7) == 7
        assert "x" not in store

    def test_initial_data(self):
        store = KeyValueStore({"a": 1, "b": 2})
        assert store.get("a") == 1
        assert store.get("b") == 2
        assert store.keys() == ["a", "b"]

    def test_initial_data_not_attributed_to_a_transaction(self):
        store = KeyValueStore({"a": 1})
        assert store.applied_transactions == frozenset()

    def test_apply_installs_writes(self):
        store = KeyValueStore()
        assert store.apply("t1", {"x": 10, "y": 20})
        assert store.get("x") == 10
        assert store.get("y") == 20
        assert store.applied("t1")

    def test_apply_is_idempotent(self):
        store = KeyValueStore()
        store.apply("t1", {"x": 1})
        store.apply("t2", {"x": 2})
        # Re-applying t1 (e.g. during recovery redo) must not clobber t2.
        assert not store.apply("t1", {"x": 1})
        assert store.get("x") == 2

    def test_snapshot_is_a_copy(self):
        store = KeyValueStore({"a": 1})
        snap = store.snapshot()
        snap["a"] = 99
        assert store.get("a") == 1

    def test_contains(self):
        store = KeyValueStore()
        store.apply("t", {"k": None})
        assert "k" in store


class TestHistory:
    def test_history_tracks_versions_in_order(self):
        store = KeyValueStore()
        store.apply("t1", {"x": 1})
        store.apply("t2", {"x": 2})
        history = store.history("x")
        assert [v.value for v in history] == [1, 2]
        assert [v.transaction_id for v in history] == ["t1", "t2"]

    def test_history_of_unknown_key_is_empty(self):
        assert KeyValueStore().history("nope") == ()

    def test_sequence_numbers_increase(self):
        store = KeyValueStore()
        store.apply("t1", {"a": 1, "b": 2})
        sequences = [v.sequence for key in ("a", "b") for v in store.history(key)]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)


class TestComparison:
    def test_same_contents_full(self):
        a = KeyValueStore({"x": 1})
        b = KeyValueStore({"x": 1})
        assert a.same_contents(b)
        b.apply("t", {"x": 2})
        assert not a.same_contents(b)

    def test_same_contents_on_selected_keys(self):
        a = KeyValueStore({"x": 1, "y": 5})
        b = KeyValueStore({"x": 1, "y": 6})
        assert a.same_contents(b, keys=["x"])
        assert not a.same_contents(b, keys=["x", "y"])


class TestProperties:
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5), st.integers(), min_size=0, max_size=10
        )
    )
    def test_property_apply_reads_back(self, writes):
        store = KeyValueStore()
        store.apply("t", writes)
        for key, value in writes.items():
            assert store.get(key) == value

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["t1", "t2", "t3"]),
                st.dictionaries(st.sampled_from(["a", "b"]), st.integers(), max_size=2),
            ),
            max_size=10,
        )
    )
    def test_property_first_apply_per_transaction_wins(self, batches):
        """Replaying any prefix of already-applied transactions never changes state."""
        store = KeyValueStore()
        applied: dict[str, dict] = {}
        for txn, writes in batches:
            if txn not in applied:
                applied[txn] = dict(writes)
            store.apply(txn, writes)
        replay = KeyValueStore()
        for txn, writes in applied.items():
            replay.apply(txn, writes)
        assert store.snapshot() == replay.snapshot()
