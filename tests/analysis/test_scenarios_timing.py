"""Tests for scenario generation and timing measurement."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.scenarios import ScenarioGrid, default_partition_times, partition_sweep, split_choices
from repro.analysis.timing import (
    TimingMeasurement,
    measure_master_probe_window,
    measure_protocol_timeouts,
    measure_wait_after_timeout_in_p,
    measure_wait_after_timeout_in_w,
    worst_case,
)
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.partition import PartitionSchedule


class TestSplitChoices:
    def test_three_sites_has_three_splits(self):
        splits = split_choices(3)
        assert len(splits) == 3
        for g1, g2 in splits:
            assert 1 in g1
            assert set(g1) | set(g2) == {1, 2, 3}
            assert not set(g1) & set(g2)

    def test_four_sites_has_seven_splits(self):
        assert len(split_choices(4)) == 7

    @given(st.integers(min_value=2, max_value=7))
    def test_property_split_count_is_two_to_slaves_minus_one(self, n_sites):
        assert len(split_choices(n_sites)) == 2 ** (n_sites - 1) - 1

    def test_master_always_in_g1(self):
        for g1, g2 in split_choices(5):
            assert 1 in g1
            assert 1 not in g2


class TestScenarioGrid:
    def test_grid_size_matches_len(self):
        grid = ScenarioGrid(n_sites=3, partition_times=[1.0, 2.0], no_voter_options=(frozenset(),))
        specs = list(grid.specs())
        assert len(specs) == len(grid) == 2 * 3

    def test_partition_sweep_builds_specs(self):
        specs = partition_sweep(3, times=[1.0, 2.5])
        assert len(specs) == 6
        assert all(spec.partition is not None for spec in specs)

    def test_transient_grid_heals(self):
        specs = partition_sweep(3, times=[1.0], heal_after=2.0)
        events = list(specs[0].partition)
        assert len(events) == 2
        assert events[1].is_heal
        assert events[1].time == 3.0

    def test_default_partition_times_scale_with_t(self):
        unit = default_partition_times(1.0)
        doubled = default_partition_times(2.0)
        assert doubled[0] == 2 * unit[0]
        assert len(unit) == len(doubled)

    def test_no_voter_options_expand_grid(self):
        specs = partition_sweep(
            3, times=[1.0], no_voter_options=(frozenset(), frozenset({2}))
        )
        assert len(specs) == 6


class TestTimingMeasurement:
    def test_within_bound(self):
        m = TimingMeasurement(name="x", measured=1.9, bound=2.0, unit=1.0)
        assert m.within_bound
        assert m.measured_in_t == pytest.approx(1.9)

    def test_exceeding_bound(self):
        m = TimingMeasurement(name="x", measured=2.5, bound=2.0, unit=1.0)
        assert not m.within_bound
        assert "EXCEEDED" in str(m)

    def test_infinite_bound_always_ok(self):
        m = TimingMeasurement(name="x", measured=100.0, bound=math.inf, unit=1.0)
        assert m.within_bound

    def test_unit_conversion(self):
        m = TimingMeasurement(name="x", measured=6.0, bound=10.0, unit=2.0)
        assert m.measured_in_t == pytest.approx(3.0)
        assert m.bound_in_t == pytest.approx(5.0)

    def test_worst_case_helper(self):
        assert worst_case([1.0, 3.0, 2.0]) == 3.0
        assert worst_case([]) is None


class TestTraceMeasurements:
    def test_failure_free_round_trips(self):
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"), ScenarioSpec(n_sites=3)
        )
        waits = measure_protocol_timeouts(result)
        assert waits["master_round_trip"] == pytest.approx(2.0)
        assert waits["slave_wait"] == pytest.approx(2.0)

    def test_probe_window_measured_only_when_window_opens(self):
        clean = run_scenario(
            create_protocol("terminating-three-phase-commit"), ScenarioSpec(n_sites=3)
        )
        assert measure_master_probe_window(clean) is None
        partitioned = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=PartitionSchedule.simple(2.5, [1, 2], [3])),
        )
        gap = measure_master_probe_window(partitioned)
        assert gap is not None
        assert 0.0 < gap <= 5.0

    def test_wait_in_w_measured_for_separated_slave(self):
        # Partition after the votes are in but before the prepare reaches
        # site 3: the slave has nothing of its own in flight, so it times out
        # in w and eventually aborts via the 6T rule.
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=PartitionSchedule.simple(2.1, [1, 2], [3])),
        )
        waits = measure_wait_after_timeout_in_w(result)
        assert 3 in waits
        assert waits[3] <= 6.0

    def test_wait_in_p_inf_for_blocked_slave(self):
        partition = PartitionSchedule.transient(4.25, 5.25, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit-no-transient"),
            ScenarioSpec(n_sites=3, partition=partition, horizon=80.0),
        )
        waits = measure_wait_after_timeout_in_p(result)
        assert math.isinf(waits[3])

    def test_wait_in_p_empty_when_nobody_times_out(self):
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"), ScenarioSpec(n_sites=3)
        )
        assert measure_wait_after_timeout_in_p(result) == {}
