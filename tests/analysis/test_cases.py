"""Tests for the Section 6 case constructions and classification."""

import math

import pytest

from repro.analysis.cases import build_case_scenario, classify_run, section6_cases
from repro.analysis.timing import measure_wait_after_timeout_in_p
from repro.core.transient import PartitionCase, worst_case_wait
from repro.protocols.registry import create_protocol
from repro.protocols.runner import run_scenario

ALL_CASES = list(PartitionCase)


@pytest.fixture(scope="module")
def executed_cases():
    """Run every constructed case once under both protocol variants."""
    outcomes = {}
    for case in ALL_CASES:
        scenario = build_case_scenario(case)
        plain = run_scenario(
            create_protocol("terminating-three-phase-commit-no-transient"), scenario.spec
        )
        transient = run_scenario(
            create_protocol("terminating-three-phase-commit"), scenario.spec
        )
        outcomes[case] = (scenario, plain, transient)
    return outcomes


class TestCaseConstructions:
    def test_section6_cases_covers_every_case(self):
        scenarios = section6_cases()
        assert {s.case for s in scenarios} == set(ALL_CASES)

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            build_case_scenario("not-a-case")  # type: ignore[arg-type]

    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.label)
    def test_each_construction_realizes_its_case(self, executed_cases, case):
        scenario, plain, _ = executed_cases[case]
        assert classify_run(plain) is case, scenario.description

    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.label)
    def test_transient_rule_keeps_every_case_consistent(self, executed_cases, case):
        _, _, transient = executed_cases[case]
        assert not transient.atomicity_violated
        assert not transient.blocked

    def test_only_case_3222_blocks_the_section5_protocol(self, executed_cases):
        blocked_cases = {
            case for case, (_, plain, _) in executed_cases.items() if plain.blocked
        }
        assert blocked_cases == {PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS}

    def test_no_case_violates_atomicity(self, executed_cases):
        for case, (_, plain, transient) in executed_cases.items():
            assert not plain.atomicity_violated, case.label
            assert not transient.atomicity_violated, case.label

    def test_case_3222_commit_matches_the_other_sites(self, executed_cases):
        _, _, transient = executed_cases[PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS]
        assert transient.all_committed

    def test_bounded_cases_terminate_within_five_t_or_window(self, executed_cases):
        """The correctness-critical fact behind the Section 6 rule: in every
        case other than 3.2.2.2 the G2 slaves that timed out in p hear
        something before the 5T fallback would fire."""
        g2_bound = 5.0
        for case, (scenario, plain, _) in executed_cases.items():
            if case is PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS:
                continue
            unit = scenario.spec.effective_latency().upper_bound
            g2 = set()
            schedule = scenario.spec.partition
            if schedule is not None and len(schedule):
                first = next(iter(schedule))
                if first.spec is not None:
                    g2 = set(first.spec.remote_partition(1))
            waits = measure_wait_after_timeout_in_p(plain)
            for site, wait in waits.items():
                if site in g2:
                    assert not math.isinf(wait), case.label
                    assert wait / unit <= g2_bound + 1e-9, (case.label, site, wait)

    def test_paper_bound_table_shape(self):
        """The ordering of the paper's bounds (T < 4T < 5T < inf) is preserved."""
        assert worst_case_wait(PartitionCase.SOME_PREPARE_SOME_NOT_ACK_LOST) < worst_case_wait(
            PartitionCase.SOME_PREPARE_PROBE_LOST
        )
        assert worst_case_wait(PartitionCase.SOME_PREPARE_PROBE_LOST) < worst_case_wait(
            PartitionCase.SOME_PREPARE_PROBES_PASS
        )
        assert math.isinf(
            worst_case_wait(PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS)
        )


class TestClassification:
    def test_failure_free_run_classifies_as_all_commit_case(self):
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            build_case_scenario(PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS).spec,
        )
        assert classify_run(result) is PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS

    def test_run_without_partition_classifies_as_all_commit_case(self):
        from repro.protocols.runner import ScenarioSpec

        result = run_scenario(
            create_protocol("terminating-three-phase-commit"), ScenarioSpec(n_sites=3)
        )
        assert classify_run(result) is PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS
