"""Tests for the atomicity and blocking analysis."""

from repro.analysis.atomicity import check_atomicity, summarize_runs
from repro.analysis.blocking import blocking_report
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.partition import PartitionSchedule


def run(name, **kwargs):
    return run_scenario(create_protocol(name), ScenarioSpec(**kwargs))


class TestAtomicityReport:
    def test_consistent_batch(self):
        results = [run("terminating-three-phase-commit", n_sites=3) for _ in range(3)]
        report = summarize_runs(results)
        assert report.total_runs == 3
        assert report.resilient
        assert report.violation_rate == 0.0
        assert report.committed_runs == 3
        assert "resilient" in report.summary()

    def test_violating_batch_collects_witnesses(self):
        partition = PartitionSchedule.simple(2.25, [1, 2], [3])
        results = [
            run("naive-extended-three-phase-commit", n_sites=3, partition=partition)
        ]
        report = summarize_runs(results)
        assert report.atomicity_violations == 1
        assert not report.resilient
        assert report.violation_witnesses
        assert "NOT resilient" in report.summary()

    def test_blocked_batch(self):
        partition = PartitionSchedule.simple(1.5, [1], [2, 3])
        results = [run("two-phase-commit", n_sites=3, partition=partition)]
        report = summarize_runs(results)
        assert report.blocked_runs == 1
        assert report.blocking_rate == 1.0
        assert report.blocking_witnesses

    def test_check_atomicity_single_run(self):
        good = run("terminating-three-phase-commit", n_sites=3)
        assert check_atomicity(good)
        partition = PartitionSchedule.simple(2.25, [1, 2], [3])
        bad = run("naive-extended-three-phase-commit", n_sites=3, partition=partition)
        assert not check_atomicity(bad)

    def test_empty_batch(self):
        report = summarize_runs([], protocol="nothing")
        assert report.total_runs == 0
        assert report.violation_rate == 0.0
        assert report.resilient

    def test_consistent_runs_count(self):
        partition = PartitionSchedule.simple(1.5, [1], [2, 3])
        results = [
            run("terminating-three-phase-commit", n_sites=3),
            run("two-phase-commit", n_sites=3, partition=partition),
        ]
        report = summarize_runs(results, protocol="mixed")
        assert report.consistent_runs == 1


class TestBlockingReport:
    def test_nonblocking_protocol(self):
        results = [run("terminating-three-phase-commit", n_sites=3) for _ in range(2)]
        report = blocking_report(results)
        assert report.blocking_rate == 0.0
        assert report.mean_blocked_sites == 0.0
        assert report.max_decision_latency is not None
        assert report.mean_lock_hold_time is not None

    def test_blocking_protocol_charges_lock_time_to_horizon(self):
        partition = PartitionSchedule.simple(1.5, [1], [2, 3])
        blocked = blocking_report(
            [run("two-phase-commit", n_sites=3, partition=partition, horizon=40.0)]
        )
        free = blocking_report([run("two-phase-commit", n_sites=3)])
        assert blocked.blocking_rate == 1.0
        assert blocked.mean_lock_hold_time > free.mean_lock_hold_time

    def test_summary_text(self):
        report = blocking_report([run("two-phase-commit", n_sites=3)])
        text = report.summary()
        assert "two-phase-commit" in text
        assert "blocking rate" in text

    def test_empty_report(self):
        report = blocking_report([], protocol="nothing")
        assert report.mean_decision_latency is None
        assert report.max_decision_latency is None
        assert report.mean_lock_hold_time is None
