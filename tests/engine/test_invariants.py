"""Seeded randomized cross-protocol invariant suite.

From one fixed seed this module generates 240 random scenarios -- permanent
and transient simple partitions, failure-free runs, pessimistic-model runs
and slave crashes, over 3-6 sites with random splits, onset times, latency
models, vote patterns and simulator seeds -- and runs *every* protocol in
the registry over all of them through the sweep engine.

The assertions encode the paper's claims per protocol class:

* every protocol, every scenario: committed stores never diverge;
* every protocol except the (deliberately broken) extended 2PC: a commit
  anywhere implies no site voted "no";
* the terminating protocols (Theorem 9 / Theorem 10): consistent on every
  optimistic simple partition, with every decision inside the 2T / 3T / 5T
  / 6T bounds of Figs. 5-7 and 9;
* the Section 6 rule: the transient-aware protocols also terminate
  transient partitions, while the no-transient variant blocks on one;
* the blocking protocols (2PC, 3PC, quorum): block but never violate
  atomicity under optimistic partitions;
* the Lemma 3 augmentations (extended 2PC, naive extended 3PC): violate
  atomicity somewhere in the random set.

Everything is deterministic: same seed, same scenarios, same verdicts,
regardless of worker count (see test_determinism.py).
"""

import math
import random

import pytest

from repro.engine import SweepEngine, SweepTask, spec_hash
from repro.protocols.registry import available_protocols
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import CrashSchedule
from repro.sim.latency import UniformLatency
from repro.sim.partition import PartitionSchedule

SEED = 20260727
EPS = 1e-9

NONBLOCKING = (
    "terminating-three-phase-commit",
    "terminating-three-phase-commit-no-transient",
    "terminating-quorum-commit",
)
TRANSIENT_AWARE = (
    "terminating-three-phase-commit",
    "terminating-quorum-commit",
)
BLOCKING = ("two-phase-commit", "three-phase-commit", "quorum-commit")
BROKEN = ("extended-two-phase-commit", "naive-extended-three-phase-commit")

MEASURES = ("timeouts", "probe_window", "wait_in_w", "wait_in_p")


def _random_split(rng: random.Random, n_sites: int):
    slaves = list(range(2, n_sites + 1))
    g2 = sorted(rng.sample(slaves, rng.randint(1, len(slaves))))
    g1 = sorted(set(range(1, n_sites + 1)) - set(g2))
    return g1, g2


def _random_latency(rng: random.Random):
    if rng.random() < 0.5:
        return None  # the default constant delay of T
    return UniformLatency(round(rng.uniform(0.2, 0.6), 2), 1.0)


def _random_no_voters(rng: random.Random, n_sites: int) -> frozenset[int]:
    return frozenset(s for s in range(2, n_sites + 1) if rng.random() < 0.15)


def generate_scenarios(seed: int = SEED) -> list[tuple[str, ScenarioSpec]]:
    """240 random ``(bucket, spec)`` scenarios from one fixed seed."""
    rng = random.Random(seed)
    scenarios: list[tuple[str, ScenarioSpec]] = []
    for _ in range(120):  # the Theorem 9 class: permanent simple partitions
        n = rng.randint(3, 5)
        g1, g2 = _random_split(rng, n)
        at = round(rng.uniform(0.25, 8.0), 2)
        scenarios.append(
            (
                "theorem9",
                ScenarioSpec(
                    n_sites=n,
                    partition=PartitionSchedule.simple(at, g1, g2),
                    latency=_random_latency(rng),
                    no_voters=_random_no_voters(rng, n),
                    seed=rng.randrange(10**6),
                ),
            )
        )
    for _ in range(48):  # the Section 6 class: transient simple partitions
        n = rng.randint(3, 5)
        g1, g2 = _random_split(rng, n)
        at = round(rng.uniform(0.25, 8.0), 2)
        heal = round(at + rng.uniform(0.5, 6.0), 2)
        scenarios.append(
            (
                "transient",
                ScenarioSpec(
                    n_sites=n,
                    partition=PartitionSchedule.transient(at, heal, g1, g2),
                    latency=_random_latency(rng),
                    no_voters=_random_no_voters(rng, n),
                    seed=rng.randrange(10**6),
                ),
            )
        )
    for _ in range(24):  # failure-free runs (the Fig. 5 timing class)
        n = rng.randint(3, 6)
        scenarios.append(
            (
                "failure_free",
                ScenarioSpec(
                    n_sites=n,
                    latency=_random_latency(rng),
                    no_voters=_random_no_voters(rng, n),
                    seed=rng.randrange(10**6),
                ),
            )
        )
    for _ in range(24):  # outside assumption 1: the pessimistic model
        n = rng.randint(3, 5)
        g1, g2 = _random_split(rng, n)
        at = round(rng.uniform(0.25, 8.0), 2)
        scenarios.append(
            (
                "pessimistic",
                ScenarioSpec(
                    n_sites=n,
                    partition=PartitionSchedule.simple(at, g1, g2),
                    model="pessimistic",
                    latency=_random_latency(rng),
                    no_voters=_random_no_voters(rng, n),
                    seed=rng.randrange(10**6),
                ),
            )
        )
    for _ in range(24):  # outside assumptions 3-4: slave crashes
        n = rng.randint(3, 5)
        site = rng.randint(2, n)
        at = round(rng.uniform(0.25, 8.0), 2)
        recover = round(at + rng.uniform(1.0, 8.0), 2) if rng.random() < 0.5 else None
        partition = None
        if rng.random() < 0.5:
            g1, g2 = _random_split(rng, n)
            partition = PartitionSchedule.simple(
                round(rng.uniform(0.25, 8.0), 2), g1, g2
            )
        scenarios.append(
            (
                "crash",
                ScenarioSpec(
                    n_sites=n,
                    partition=partition,
                    crashes=CrashSchedule.single(site, at=at, recover_at=recover),
                    latency=_random_latency(rng),
                    no_voters=_random_no_voters(rng, n),
                    seed=rng.randrange(10**6),
                ),
            )
        )
    return scenarios


OPTIMISTIC_BUCKETS = ("theorem9", "transient", "failure_free")


@pytest.fixture(scope="module")
def scenarios():
    return generate_scenarios()


@pytest.fixture(scope="module")
def verdicts(scenarios):
    """``protocol -> [(bucket, summary), ...]`` over the whole random set."""
    engine = SweepEngine(workers=1)
    out = {}
    for protocol in available_protocols():
        tasks = [SweepTask(protocol=protocol, spec=spec) for _, spec in scenarios]
        summaries = engine.run(tasks, measures=MEASURES).summaries
        out[protocol] = [
            (bucket, summary)
            for (bucket, _), summary in zip(scenarios, summaries)
        ]
    return out


class TestGenerator:
    def test_at_least_200_scenarios_in_every_class(self, scenarios):
        assert len(scenarios) >= 200
        buckets = {bucket for bucket, _ in scenarios}
        assert buckets == {"theorem9", "transient", "failure_free", "pessimistic", "crash"}

    def test_generation_is_deterministic(self, scenarios):
        regenerated = generate_scenarios(SEED)
        assert [
            spec_hash("x", spec) for _, spec in scenarios
        ] == [spec_hash("x", spec) for _, spec in regenerated]

    def test_covers_every_registry_protocol(self, verdicts):
        assert sorted(verdicts) == available_protocols()


class TestUniversalInvariants:
    def test_committed_stores_never_diverge(self, verdicts):
        for protocol, runs in verdicts.items():
            for _, summary in runs:
                assert summary.stores_agree, f"{protocol}: {summary.summary()}"

    def test_commit_implies_unanimous_yes_votes(self, verdicts):
        # Holds for every protocol except extended 2PC, whose Rule (a)
        # timeout-commit from w is exactly the defect Lemma 3 exposes.
        for protocol, runs in verdicts.items():
            if protocol == "extended-two-phase-commit":
                continue
            for _, summary in runs:
                if summary.committed_sites:
                    votes = set(summary.votes.values())
                    assert "no" not in votes, f"{protocol}: {summary.summary()}"

    def test_extended_two_phase_commits_despite_a_no_vote_somewhere(self, verdicts):
        witnesses = [
            summary
            for _, summary in verdicts["extended-two-phase-commit"]
            if summary.committed_sites and "no" in set(summary.votes.values())
        ]
        assert witnesses, "expected the Rule (a)/(b) defect to show up"


class TestNonblockingProtocols:
    def test_consistent_on_every_optimistic_permanent_partition(self, verdicts):
        for protocol in NONBLOCKING:
            for bucket, summary in verdicts[protocol]:
                if bucket not in ("theorem9", "failure_free"):
                    continue
                assert summary.consistent, f"{protocol}: {summary.summary()}"
                assert summary.conflicting_decisions == 0

    def test_transient_rule_terminates_transient_partitions(self, verdicts):
        for protocol in TRANSIENT_AWARE:
            for bucket, summary in verdicts[protocol]:
                if bucket == "transient":
                    assert summary.consistent, f"{protocol}: {summary.summary()}"

    def test_no_transient_variant_blocks_on_some_transient_partition(self, verdicts):
        runs = verdicts["terminating-three-phase-commit-no-transient"]
        blocked = [s for b, s in runs if b == "transient" and s.blocked]
        violated = [s for b, s in runs if b == "transient" and s.atomicity_violated]
        assert blocked, "the Section 6 rule should be load-bearing somewhere"
        assert not violated

    def test_decisions_within_paper_bounds(self, verdicts):
        # Figs. 6, 7, 9: after an UD(prepare) the master collects probes for
        # at most 5T; a slave that timed out in w decides within 6T; a slave
        # that timed out in p decides within 5T.  Finite waits only: the one
        # unbounded case (3.2.2.2) is the no-transient variant blocking on a
        # transient partition, asserted above.
        for protocol in NONBLOCKING:
            for bucket, summary in verdicts[protocol]:
                if bucket not in OPTIMISTIC_BUCKETS:
                    continue
                bound_t = summary.max_delay
                for wait in summary.metrics["wait_in_w"].values():
                    if not math.isinf(wait):
                        assert wait <= 6 * bound_t + EPS, f"{protocol}: {wait}"
                for wait in summary.metrics["wait_in_p"].values():
                    if not math.isinf(wait):
                        assert wait <= 5 * bound_t + EPS, f"{protocol}: {wait}"
                gap = summary.metrics["probe_window"]["gap"]
                if gap is not None:
                    assert gap <= 5 * bound_t + EPS, f"{protocol}: {gap}"

    def test_nothing_blocks_after_a_timeout_on_permanent_partitions(self, verdicts):
        for protocol in NONBLOCKING:
            for bucket, summary in verdicts[protocol]:
                if bucket not in ("theorem9", "failure_free"):
                    continue
                waits = {
                    **summary.metrics["wait_in_w"],
                    **summary.metrics["wait_in_p"],
                }
                assert not any(math.isinf(w) for w in waits.values())


class TestFig5TimeoutIntervals:
    def test_failure_free_rounds_within_2t_and_3t(self, verdicts):
        for protocol, runs in verdicts.items():
            for bucket, summary in runs:
                if bucket != "failure_free":
                    continue
                bound_t = summary.max_delay
                waits = summary.metrics["timeouts"]
                if waits["master_round_trip"] is not None:
                    assert waits["master_round_trip"] <= 2 * bound_t + EPS, protocol
                if waits["slave_wait"] is not None:
                    assert waits["slave_wait"] <= 3 * bound_t + EPS, protocol


class TestBlockingAndBrokenProtocols:
    def test_blocking_protocols_never_violate_atomicity_under_partitions(self, verdicts):
        for protocol in BLOCKING:
            for bucket, summary in verdicts[protocol]:
                if bucket in OPTIMISTIC_BUCKETS:
                    assert not summary.atomicity_violated, (
                        f"{protocol}: {summary.summary()}"
                    )

    def test_blocking_protocols_do_block_somewhere(self, verdicts):
        for protocol in BLOCKING:
            blocked = [
                s for b, s in verdicts[protocol] if b == "theorem9" and s.blocked
            ]
            assert blocked, f"{protocol} should block under permanent partitions"

    def test_lemma3_augmentations_violate_atomicity_somewhere(self, verdicts):
        for protocol in BROKEN:
            violations = [
                s
                for b, s in verdicts[protocol]
                if b == "theorem9" and s.atomicity_violated
            ]
            assert violations, f"{protocol} should violate atomicity (Lemma 3)"
