"""Engine determinism: worker count must not change results, and a warm
cache must serve byte-identical summaries without re-executing anything."""

import pathlib

import pytest

from repro.engine import ResultCache, ScenarioGrid, SweepEngine, SweepTask
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import (
    ByzantineSpec,
    FaultPlan,
    LinkFault,
    RetransmitPolicy,
)
from repro.sim.latency import UniformLatency
from repro.sim.partition import PartitionSchedule


@pytest.fixture(scope="module")
def grid():
    """A small but diverse grid: two protocols, permanent + transient
    partitions, constant + stochastic latencies, two vote patterns."""
    return ScenarioGrid(
        protocols=("terminating-three-phase-commit", "two-phase-commit"),
        n_sites=3,
        partitions=(
            None,
            PartitionSchedule.simple(1.5, [1, 2], [3]),
            PartitionSchedule.simple(2.5, [1], [2, 3]),
            PartitionSchedule.transient(1.5, 4.0, [1, 3], [2]),
        ),
        latencies=(None, UniformLatency(0.25, 1.0)),
        no_voter_options=(frozenset(), frozenset({3})),
        seeds=(0, 1),
    )


MEASURES = ("wait_in_w", "wait_in_p", "probe_window")


class TestWorkerCountDeterminism:
    def test_workers_1_and_4_yield_identical_summary_sequences(self, grid):
        serial = SweepEngine(workers=1).run(grid, measures=MEASURES)
        parallel = SweepEngine(workers=4).run(grid, measures=MEASURES)
        assert serial.total == parallel.total == len(grid)
        # Results are reassembled in task order, so the sequences (not just
        # the multisets) must match element-for-element.
        assert serial.summaries == parallel.summaries

    def test_chunk_size_does_not_change_results(self, grid):
        small_chunks = SweepEngine(workers=4, chunk_size=1).run(grid)
        big_chunks = SweepEngine(workers=4, chunk_size=50).run(grid)
        assert small_chunks.summaries == big_chunks.summaries


class TestChunkFrameTransport:
    """Workers return summaries as canonical-JSON frames; nothing may drift."""

    def test_parallel_frames_decode_to_byte_identical_summaries(self, grid):
        serial = SweepEngine(workers=1).run(grid, measures=MEASURES)
        parallel = SweepEngine(workers=4, chunk_size=3).run(grid, measures=MEASURES)
        # Equality of the decoded summaries is necessary but not sufficient:
        # the cache stores the encoded bytes verbatim, so the serialized form
        # itself must round-trip without reordering or float drift.
        assert [s.to_json_bytes() for s in serial] == [
            s.to_json_bytes() for s in parallel
        ]

    def test_parallel_populated_cache_matches_serial_populated_cache(self, grid, tmp_path):
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        SweepEngine(workers=1, cache=serial_dir).run(grid, measures=MEASURES)
        SweepEngine(workers=4, cache=parallel_dir).run(grid, measures=MEASURES)
        serial_files = {
            path.relative_to(serial_dir): path.read_bytes()
            for path in sorted(serial_dir.glob("*/*.json"))
        }
        parallel_files = {
            path.relative_to(parallel_dir): path.read_bytes()
            for path in sorted(parallel_dir.glob("*/*.json"))
        }
        assert serial_files == parallel_files
        assert len(serial_files) == len(grid)


class TestCacheDeterminism:
    def test_warm_cache_is_byte_identical_and_executes_nothing(self, grid, tmp_path):
        cache_dir = tmp_path / "cache"
        engine = SweepEngine(workers=1, cache=ResultCache(cache_dir))

        cold = engine.run(grid, measures=MEASURES)
        assert (cold.executed, cold.cache_hits) == (len(grid), 0)
        cold_files = {
            path.relative_to(cache_dir): path.read_bytes()
            for path in sorted(pathlib.Path(cache_dir).glob("*/*.json"))
        }
        assert len(cold_files) == len(grid)

        warm = engine.run(grid, measures=MEASURES)
        assert (warm.executed, warm.cache_hits) == (0, len(grid))
        assert warm.summaries == cold.summaries
        warm_files = {
            path.relative_to(cache_dir): path.read_bytes()
            for path in sorted(pathlib.Path(cache_dir).glob("*/*.json"))
        }
        assert warm_files == cold_files

    def test_cache_written_serially_is_hit_by_parallel_engine(self, grid, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = SweepEngine(workers=1, cache=cache_dir).run(grid)
        warm = SweepEngine(workers=4, cache=cache_dir).run(grid)
        assert (warm.executed, warm.cache_hits) == (0, len(grid))
        assert warm.summaries == cold.summaries

    def test_cache_entry_without_requested_measures_is_a_miss(self, grid, tmp_path):
        # A cache populated without measures must not serve summaries with
        # empty metrics to a caller that asked for measures; re-execution
        # merges so entries only ever gain measures.
        engine = SweepEngine(workers=1, cache=tmp_path / "cache")
        engine.run(grid)  # no measures
        with_measures = engine.run(grid, measures=MEASURES)
        assert with_measures.cache_hits == 0
        for summary in with_measures:
            assert set(MEASURES) <= set(summary.metrics)
        # Now both the measured and the measure-free callers hit the cache.
        assert engine.run(grid, measures=MEASURES).cache_hits == len(grid)
        assert engine.run(grid).cache_hits == len(grid)
        # And a subset of measures is served without re-execution too.
        assert engine.run(grid, measures=("wait_in_w",)).cache_hits == len(grid)

    def test_changing_one_axis_invalidates_only_that_point(self, grid, tmp_path):
        engine = SweepEngine(workers=1, cache=tmp_path / "cache")
        engine.run(grid)
        # A grid differing in one axis value re-executes only the new points.
        tasks = list(grid.tasks())
        changed = tasks[0].spec.__class__(**{**tasks[0].spec.__dict__, "seed": 99})
        partial = engine.run(
            [(tasks[0].protocol, changed)] + [(t.protocol, t.spec) for t in tasks[1:]]
        )
        assert partial.executed == 1
        assert partial.cache_hits == len(grid) - 1


@pytest.fixture(scope="module")
def fault_grid():
    """Fault-plan scenarios: lossy (raw + retransmit), duplicating and
    Byzantine plans, whose realizations come from the plan's own seeded RNG
    and so must be exactly as deterministic as the fault-free grid."""
    plans = (
        FaultPlan(links=(LinkFault(loss=0.3),), seed=3),
        FaultPlan(
            links=(LinkFault(loss=0.3),),
            retransmit=RetransmitPolicy(),
            seed=3,
        ),
        FaultPlan(links=(LinkFault(duplicate=0.5, reorder=0.4),), seed=5),
        FaultPlan(byzantine=(ByzantineSpec(site=1),), seed=7),
    )
    return [
        SweepTask(
            protocol=protocol,
            spec=ScenarioSpec(n_sites=3, seed=seed, faults=plan),
        )
        for protocol in ("two-phase-commit", "terminating-three-phase-commit")
        for plan in plans
        for seed in (0, 1)
    ]


class TestFaultPlanDeterminism:
    """Fault realizations are part of the reproducibility contract: worker
    count, chunking and cache round-trips must never change a faulty run."""

    def test_workers_do_not_change_fault_realizations(self, fault_grid):
        serial = SweepEngine(workers=1).run(fault_grid)
        parallel = SweepEngine(workers=4, chunk_size=3).run(fault_grid)
        assert [s.to_json_bytes() for s in serial] == [
            s.to_json_bytes() for s in parallel
        ]

    def test_warm_cache_replays_faulty_runs_byte_identically(
        self, fault_grid, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        engine = SweepEngine(workers=1, cache=ResultCache(cache_dir))
        cold = engine.run(fault_grid)
        warm = engine.run(fault_grid)
        assert (warm.executed, warm.cache_hits) == (0, len(fault_grid))
        assert [s.to_json_bytes() for s in warm] == [
            s.to_json_bytes() for s in cold
        ]

    def test_empty_fault_plan_is_byte_identical_to_no_plan(self):
        # The ISSUE acceptance criterion: FaultPlan.none() must normalize
        # away entirely -- same spec hash, same cache key, same summary
        # bytes as a spec that never heard of fault plans.
        bare = ScenarioSpec(n_sites=3, seed=0)
        noned = ScenarioSpec(n_sites=3, seed=0, faults=FaultPlan.none())
        assert noned.faults is None
        assert bare == noned
        tasks = [
            SweepTask(protocol="two-phase-commit", spec=bare),
            SweepTask(protocol="two-phase-commit", spec=noned),
        ]
        assert tasks[0].spec_hash == tasks[1].spec_hash
        first, second = SweepEngine(workers=1).run(tasks).summaries
        assert first.to_json_bytes() == second.to_json_bytes()


class TestObservabilityByteIdentity:
    """Metrics and spans are strictly out-of-band: enabling them must never
    change a summary byte, a cache file, or a JSONL spill."""

    def test_summaries_identical_with_metrics_and_spans_enabled(self, grid):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.spans import SpanRecorder

        plain = SweepEngine(workers=1).run(grid, measures=MEASURES)
        observed = SweepEngine(
            workers=1, metrics=MetricsRegistry(), spans=SpanRecorder()
        ).run(grid, measures=MEASURES)
        assert [s.to_json_bytes() for s in plain] == [
            s.to_json_bytes() for s in observed
        ]

    def test_cache_files_identical_with_metrics_enabled(self, grid, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.spans import SpanRecorder

        plain_dir, observed_dir = tmp_path / "plain", tmp_path / "observed"
        SweepEngine(workers=4, cache=plain_dir).run(grid, measures=MEASURES)
        SweepEngine(
            workers=4,
            cache=observed_dir,
            metrics=MetricsRegistry(),
            spans=SpanRecorder(),
        ).run(grid, measures=MEASURES)
        plain_files = {
            path.relative_to(plain_dir): path.read_bytes()
            for path in sorted(plain_dir.glob("*/*.json"))
        }
        observed_files = {
            path.relative_to(observed_dir): path.read_bytes()
            for path in sorted(observed_dir.glob("*/*.json"))
        }
        assert plain_files == observed_files
        assert len(plain_files) == len(grid)

    def test_jsonl_spill_identical_with_metrics_enabled(self, grid, tmp_path):
        from repro.engine import JsonlSink
        from repro.obs.metrics import MetricsRegistry

        plain_path = tmp_path / "plain.jsonl"
        observed_path = tmp_path / "observed.jsonl"
        plain_stats = SweepEngine(workers=1).run_streaming(
            grid, sinks=JsonlSink(plain_path)
        )
        observed_stats = SweepEngine(
            workers=1, metrics=MetricsRegistry()
        ).run_streaming(grid, sinks=JsonlSink(observed_path))
        assert plain_path.read_bytes() == observed_path.read_bytes()
        assert plain_stats.executed == observed_stats.executed


class TestMetricsDeterminism:
    """Order-independent instruments must agree between serial and parallel
    runs of the same grid: counters count work, not scheduling."""

    ORDER_INDEPENDENT = (
        "engine.tasks.total",
        "engine.tasks.executed",
        "engine.tasks.cache_hits",
        "sim.events_scheduled",
        "sim.events_executed",
        "sim.events_cancelled",
    )

    def test_parallel_merged_counters_equal_serial_counters(self, grid):
        from repro.obs.metrics import MetricsRegistry

        serial_registry = MetricsRegistry()
        SweepEngine(workers=1, metrics=serial_registry).run(grid)
        parallel_registry = MetricsRegistry()
        SweepEngine(workers=4, chunk_size=3, metrics=parallel_registry).run(grid)
        serial = serial_registry.snapshot()["counters"]
        parallel = parallel_registry.snapshot()["counters"]
        for name in self.ORDER_INDEPENDENT:
            assert serial[name] == parallel[name], name
        assert serial["engine.tasks.executed"] == len(grid)

    def test_task_execute_histogram_counts_every_task(self, grid):
        from repro.obs.metrics import MetricsRegistry

        for workers in (1, 4):
            registry = MetricsRegistry()
            SweepEngine(workers=workers, metrics=registry).run(grid)
            histogram = registry.snapshot()["histograms"][
                "engine.task.execute_seconds"
            ]
            assert histogram["count"] == len(grid), workers

    def test_worker_accounting_covers_every_task(self, grid):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        SweepEngine(workers=4, chunk_size=3, metrics=registry).run(grid)
        counters = registry.snapshot()["counters"]
        worker_tasks = sum(
            value
            for name, value in counters.items()
            if name.startswith("engine.worker.") and name.endswith(".tasks")
        )
        assert worker_tasks == len(grid)
        gauges = registry.snapshot()["gauges"]
        share = gauges["engine.dispatch_overhead_share"]
        assert 0.0 <= share <= 1.0

    def test_active_registry_is_restored_after_a_run(self, grid):
        from repro.obs.metrics import MetricsRegistry, get_active

        assert get_active() is None
        SweepEngine(workers=1, metrics=MetricsRegistry()).run(grid)
        assert get_active() is None
