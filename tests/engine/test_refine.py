"""Adaptive boundary refinement: agreement with uniform grids, cache reuse,
and the scenario-count advantage the engine exists to deliver."""

import pytest

from repro.engine import (
    OnsetLine,
    RefinementDriver,
    SweepEngine,
    verdict_class,
    verdict_class_with_bound,
)
from repro.protocols.runner import ScenarioSpec

TERMINATING = "terminating-three-phase-commit"


@pytest.fixture(scope="module")
def line():
    """The pinned FIG8 line: 3 sites, master-side majority, slave 3 isolated."""
    return OnsetLine(protocol=TERMINATING, n_sites=3, g1=(1, 2), g2=(3,))


def uniform_classes(line, lo, hi, step, engine=None):
    """Classify a uniform onset grid (the brute-force reference)."""
    engine = engine or SweepEngine(workers=1)
    steps = int(round((hi - lo) / step))
    times = [round(lo + i * step, 6) for i in range(steps + 1)]
    sweep = engine.run([line.task_at(t) for t in times])
    return {t: verdict_class(s) for t, s in zip(times, sweep.summaries)}


class TestBoundaryLocation:
    def test_finds_same_boundary_as_fine_uniform_grid(self, line):
        # Uniform reference over the commit-point neighbourhood at 0.01 T.
        reference = uniform_classes(line, 2.5, 3.5, 0.01)
        times = sorted(reference)
        flips = [
            (t1, t2)
            for t1, t2 in zip(times, times[1:])
            if reference[t1] != reference[t2]
        ]
        assert len(flips) == 1  # abort -> commit at the commit point

        driver = RefinementDriver(resolution=0.01)
        result = driver.refine(line, lo=2.5, hi=3.5, coarse_step=0.25)
        assert len(result.boundaries) == 1
        boundary = result.boundaries[0]
        uniform_lo, uniform_hi = flips[0]
        # The refined bracket and the uniform flip interval must overlap and
        # agree to within one resolution step.
        assert boundary.lo_class == reference[uniform_lo]
        assert boundary.hi_class == reference[uniform_hi]
        assert abs(boundary.midpoint - (uniform_lo + uniform_hi) / 2) <= 0.01
        assert boundary.width <= 0.01

    def test_executes_under_a_quarter_of_the_uniform_grid(self, line):
        driver = RefinementDriver(resolution=0.01)
        result = driver.refine(line, lo=2.5, hi=3.5, coarse_step=0.25)
        assert result.uniform_equivalent() == 101
        assert result.scenarios_run < 0.25 * result.uniform_equivalent()

    def test_flat_line_needs_only_the_coarse_scan(self):
        # 2PC blocks at every onset in this window: no flip, no bisection.
        line = OnsetLine(protocol="two-phase-commit", n_sites=3, g1=(1,), g2=(2, 3))
        driver = RefinementDriver(resolution=0.01)
        result = driver.refine(line, lo=0.5, hi=2.0, coarse_step=0.25)
        assert result.boundaries == []
        assert result.rounds == 0
        assert result.scenarios_run == 7  # just the coarse points

    def test_classes_cover_endpoints(self, line):
        result = RefinementDriver(resolution=0.05).refine(
            line, lo=2.5, hi=3.5, coarse_step=0.5
        )
        assert 2.5 in result.classes
        assert 3.5 in result.classes


class TestCacheReuse:
    def test_warm_refinement_executes_zero_new_scenarios(self, line, tmp_path):
        engine = SweepEngine(workers=1, cache=tmp_path)
        driver = RefinementDriver(engine, resolution=0.01)
        cold = driver.refine(line, lo=2.5, hi=3.5)
        assert cold.executed == cold.scenarios_run
        warm = driver.refine(line, lo=2.5, hi=3.5)
        assert warm.executed == 0
        assert warm.cache_hits == warm.scenarios_run
        assert warm.boundaries == cold.boundaries

    def test_refining_to_finer_resolution_reuses_coarser_rounds(self, line, tmp_path):
        engine = SweepEngine(workers=1, cache=tmp_path)
        coarse = RefinementDriver(engine, resolution=0.05).refine(line, lo=2.5, hi=3.5)
        fine = RefinementDriver(engine, resolution=0.01).refine(line, lo=2.5, hi=3.5)
        # Every point the coarse pass evaluated is a cache hit for the fine one.
        assert fine.cache_hits >= coarse.scenarios_run
        assert fine.boundaries[0].width <= 0.01


class TestClassifiers:
    def test_verdict_class_vocabulary(self, line):
        abort = SweepEngine(workers=1).run([line.task_at(1.0)]).summaries[0]
        commit = SweepEngine(workers=1).run([line.task_at(6.0)]).summaries[0]
        assert verdict_class(abort) == "consistent:abort"
        assert verdict_class(commit) == "consistent:commit"

    def test_blocked_runs_classify_as_blocked(self):
        blocked_line = OnsetLine(
            protocol="two-phase-commit", n_sites=3, g1=(1,), g2=(2, 3)
        )
        summary = SweepEngine(workers=1).run([blocked_line.task_at(1.5)]).summaries[0]
        assert verdict_class(summary) == "blocked"
        assert verdict_class_with_bound(summary) == "blocked"

    def test_bound_classifier_appends_whole_t_bound(self, line):
        summary = SweepEngine(workers=1).run([line.task_at(6.0)]).summaries[0]
        label = verdict_class_with_bound(summary)
        assert label.startswith("consistent:commit:<=")
        assert label.endswith("T")


class TestLineAndDriverValidation:
    def test_transient_lines_build_healing_schedules(self):
        line = OnsetLine(
            protocol=TERMINATING, n_sites=3, g1=(1, 2), g2=(3,), heal_after=2.0
        )
        schedule = line.task_at(1.5).spec.partition
        times = [event.time for event in schedule]
        assert times == [1.5, 3.5]

    def test_line_carries_base_spec_fields(self):
        line = OnsetLine(
            protocol=TERMINATING,
            n_sites=4,
            g1=(1, 2, 3),
            g2=(4,),
            no_voters=frozenset({2}),
            base_spec=ScenarioSpec(seed=7),
        )
        spec = line.task_at(2.0).spec
        assert (spec.n_sites, spec.seed, spec.no_voters) == (4, 7, frozenset({2}))

    def test_driver_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RefinementDriver(resolution=0.0)
        with pytest.raises(ValueError):
            RefinementDriver(max_rounds=0)
        driver = RefinementDriver()
        line = OnsetLine(protocol=TERMINATING, n_sites=3, g1=(1, 2), g2=(3,))
        with pytest.raises(ValueError):
            driver.refine(line, lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            driver.refine(line, lo=1.0, hi=2.0, coarse_step=0.0)

    def test_refine_partition_boundaries_covers_every_split(self):
        driver = RefinementDriver(resolution=0.1)
        results = driver.refine_partition_boundaries(
            TERMINATING, 3, lo=2.5, hi=3.5, coarse_step=0.5
        )
        assert len(results) == 3  # the 3 simple splits of 3 sites
        for result in results:
            assert result.boundaries  # each split has a commit-point flip
            assert result.boundaries[0].width <= 0.1
