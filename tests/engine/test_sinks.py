"""Unit tests for the streaming aggregation sinks."""

import pytest

from repro.analysis.atomicity import summarize_runs
from repro.analysis.blocking import blocking_report
from repro.engine import (
    AtomicitySink,
    BlockingSink,
    CallbackSink,
    DecisionTimeHistogramSink,
    JsonlSink,
    ListSink,
    ScenarioGrid,
    SweepEngine,
    VerdictCounterSink,
    ViolationCollectorSink,
    read_jsonl,
)
from repro.protocols.runner import ScenarioSpec
from repro.sim.partition import PartitionSchedule


@pytest.fixture(scope="module")
def mixed_grid():
    """Consistent, blocked and violating runs in one grid."""
    return ScenarioGrid(
        protocols=(
            "terminating-three-phase-commit",
            "two-phase-commit",
            "naive-extended-three-phase-commit",
        ),
        n_sites=3,
        partitions=(
            None,
            PartitionSchedule.simple(1.5, [1], [2, 3]),
            PartitionSchedule.simple(2.25, [1, 2], [3]),
        ),
    )


@pytest.fixture(scope="module")
def summaries(mixed_grid):
    return SweepEngine(workers=1).run(mixed_grid).summaries


def feed(sink, summaries):
    for index, summary in enumerate(summaries):
        sink.accept(index, summary)
    sink.close()
    return sink


class TestVerdictCounterSink:
    def test_counts_match_materialized_run(self, summaries):
        sink = feed(VerdictCounterSink(), summaries)
        for row in sink.rows():
            batch = [s for s in summaries if s.protocol == row["protocol"]]
            assert row["scenarios"] == len(batch)
            assert row["violations"] == sum(1 for s in batch if s.atomicity_violated)
            assert row["blocked"] == sum(1 for s in batch if s.blocked)
            assert row["committed"] == sum(1 for s in batch if s.all_committed)
            assert row["aborted"] == sum(1 for s in batch if s.all_aborted)

    def test_naive_protocol_is_not_resilient(self, summaries):
        sink = feed(VerdictCounterSink(), summaries)
        verdicts = {row["protocol"]: row["resilient"] for row in sink.rows()}
        assert verdicts["terminating-three-phase-commit"] == "yes"
        assert verdicts["two-phase-commit"] == "NO"
        assert verdicts["naive-extended-three-phase-commit"] == "NO"

    def test_rows_preserve_first_seen_order(self, summaries):
        sink = feed(VerdictCounterSink(), summaries)
        assert [row["protocol"] for row in sink.rows()] == [
            "terminating-three-phase-commit",
            "two-phase-commit",
            "naive-extended-three-phase-commit",
        ]


class TestDecisionTimeHistogramSink:
    def test_counts_decided_and_undecided_runs(self, summaries):
        sink = feed(DecisionTimeHistogramSink(bin_width=0.5), summaries)
        for protocol in {s.protocol for s in summaries}:
            batch = [s for s in summaries if s.protocol == protocol]
            decided = [
                s for s in batch
                if s.max_decision_latency() is not None and not s.blocked
            ]
            histogram = sink.histogram(protocol)
            assert sum(count for _, _, count in histogram) == len(decided)
            assert sink.undecided.get(protocol, 0) == len(batch) - len(decided)

    def test_worst_bin_covers_worst_latency(self, summaries):
        sink = feed(DecisionTimeHistogramSink(bin_width=0.25), summaries)
        terminating = [
            s for s in summaries if s.protocol == "terminating-three-phase-commit"
        ]
        worst = max(s.max_decision_latency() / s.max_delay for s in terminating)
        assert sink.worst("terminating-three-phase-commit") >= worst

    def test_rejects_nonpositive_bin_width(self):
        with pytest.raises(ValueError):
            DecisionTimeHistogramSink(bin_width=0)


class TestViolationCollectorSink:
    def test_collects_only_violations(self, summaries):
        sink = feed(ViolationCollectorSink(), summaries)
        expected = [s for s in summaries if s.atomicity_violated]
        assert sink.total == len(expected)
        assert sink.violations == expected
        assert sink.total > 0  # the naive protocol must violate somewhere

    def test_limit_bounds_retention_but_not_the_count(self, summaries):
        sink = feed(ViolationCollectorSink(limit=1), summaries)
        assert len(sink.violations) == 1
        assert sink.total == sum(1 for s in summaries if s.atomicity_violated)

    def test_rejects_negative_limit(self):
        with pytest.raises(ValueError):
            ViolationCollectorSink(limit=-1)


class TestReportSinks:
    def test_atomicity_sink_matches_summarize_runs(self, summaries):
        batch = [s for s in summaries if s.protocol == "two-phase-commit"]
        sink = feed(AtomicitySink(), batch)
        assert sink.report == summarize_runs(batch)

    def test_blocking_sink_matches_blocking_report(self, summaries):
        batch = [s for s in summaries if s.protocol == "two-phase-commit"]
        sink = feed(BlockingSink(), batch)
        assert sink.report == blocking_report(batch)

    def test_named_sinks_keep_their_protocol_on_empty_streams(self):
        sink = AtomicitySink(protocol="two-phase-commit")
        sink.close()
        assert sink.report.protocol == "two-phase-commit"
        assert sink.report.total_runs == 0


class TestListAndCallbackSinks:
    def test_list_sink_materializes_in_delivery_order(self, summaries):
        sink = feed(ListSink(), summaries)
        assert sink.summaries == list(summaries)

    def test_callback_sink_forwards_every_pair(self, summaries):
        seen = []
        feed(CallbackSink(lambda i, s: seen.append((i, s.protocol))), summaries)
        assert [i for i, _ in seen] == list(range(len(summaries)))


class TestJsonlSink:
    def test_round_trips_summaries(self, tmp_path, summaries):
        path = tmp_path / "spill.jsonl"
        feed(JsonlSink(path), summaries)
        assert list(read_jsonl(path)) == list(summaries)

    def test_empty_sweep_still_writes_the_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert path.exists()
        assert list(read_jsonl(path)) == []

    def test_engine_spill_matches_direct_serialization(self, tmp_path, mixed_grid, summaries):
        path = tmp_path / "engine.jsonl"
        SweepEngine(workers=1).run_streaming(mixed_grid, sinks=JsonlSink(path))
        expected = b"".join(s.to_json_bytes() + b"\n" for s in summaries)
        assert path.read_bytes() == expected

    def test_reuse_across_sweeps_appends_and_count_matches_lines(self, tmp_path, summaries):
        sink = JsonlSink(tmp_path / "reuse.jsonl")
        feed(sink, summaries[:3])
        feed(sink, summaries[3:5])  # second sweep must not truncate the first
        assert sink.count == 5
        assert list(read_jsonl(sink.path)) == list(summaries[:5])

    def test_close_without_writes_never_clobbers_a_previous_spill(self, tmp_path, summaries):
        path = tmp_path / "spill.jsonl"
        feed(JsonlSink(path), summaries[:2])
        # A later sink at the same path that fails before any delivery (or
        # sees an empty sweep) must leave the earlier spill intact.
        JsonlSink(path).close()
        assert list(read_jsonl(path)) == list(summaries[:2])
