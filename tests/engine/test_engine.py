"""Unit tests for the sweep-engine building blocks (grid, hashing, cache)."""

import math

import pytest

from repro.analysis.scenarios import partition_sweep
from repro.engine import (
    ResultCache,
    RunSummary,
    ScenarioGrid,
    SweepEngine,
    SweepTask,
    spec_hash,
    tasks_from_specs,
)
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import CrashSchedule
from repro.sim.latency import ConstantLatency, UniformLatency
from repro.sim.partition import PartitionSchedule
from repro.workloads.sweeps import ParameterSweep


class TestScenarioGrid:
    def test_cardinality_is_product_of_axes(self):
        grid = ScenarioGrid(
            protocols=("two-phase-commit", "three-phase-commit"),
            partitions=(None, PartitionSchedule.simple(1.0, [1, 2], [3])),
            crashes=(None, CrashSchedule.single(2, at=1.0)),
            latencies=(None, UniformLatency(0.5, 1.0)),
            no_voter_options=(frozenset(), frozenset({2})),
            models=("optimistic", "pessimistic"),
            seeds=(0, 1, 2),
        )
        assert len(grid) == 2 * 2 * 2 * 2 * 2 * 2 * 3
        assert len(list(grid.tasks())) == len(grid)

    def test_axis_order_protocol_outermost_seed_innermost(self):
        grid = ScenarioGrid(
            protocols=("two-phase-commit", "three-phase-commit"),
            seeds=(0, 1),
        )
        tasks = list(grid.tasks())
        assert [(t.protocol, t.spec.seed) for t in tasks] == [
            ("two-phase-commit", 0),
            ("two-phase-commit", 1),
            ("three-phase-commit", 0),
            ("three-phase-commit", 1),
        ]

    def test_from_partition_sweep_matches_legacy_generator(self):
        legacy = partition_sweep(
            3, times=[1.0, 2.5], no_voter_options=(frozenset(), frozenset({2}))
        )
        grid = ScenarioGrid.from_partition_sweep(
            "terminating-three-phase-commit",
            3,
            times=[1.0, 2.5],
            no_voter_options=(frozenset(), frozenset({2})),
        )
        assert len(grid) == len(legacy)
        for task, spec in zip(grid.tasks(), legacy):
            assert task.spec.no_voters == spec.no_voters
            assert [e.time for e in task.spec.partition] == [
                e.time for e in spec.partition
            ]
            assert task.spec.partition.events[0].spec == spec.partition.events[0].spec

    def test_from_parameter_sweep_lifts_spec_fields(self):
        sweep = ParameterSweep("s", {"n_sites": [3, 4], "seed": [0, 7]})
        tasks = ScenarioGrid.from_parameter_sweep(sweep, protocol="two-phase-commit")
        assert [(t.spec.n_sites, t.spec.seed) for t in tasks] == [
            (3, 0),
            (3, 7),
            (4, 0),
            (4, 7),
        ]

    def test_from_parameter_sweep_rejects_unknown_fields(self):
        sweep = ParameterSweep("bad", {"not_a_field": [1]})
        with pytest.raises(KeyError, match="not_a_field"):
            ScenarioGrid.from_parameter_sweep(sweep, protocol="two-phase-commit")

    def test_multiple_partition_axis_builds_three_group_schedules(self):
        from repro.engine.grid import multiple_partition_axis

        schedules = multiple_partition_axis(5, times=[1.0, 2.0], n_groups=3)
        assert len(schedules) == 2
        for schedule, at in zip(schedules, [1.0, 2.0]):
            (event,) = list(schedule)
            assert event.time == at
            assert event.spec.is_multiple
            assert event.spec.sites == frozenset({1, 2, 3, 4, 5})

    def test_multiple_partition_axis_rejects_bad_group_counts(self):
        from repro.engine.grid import multiple_partition_axis

        with pytest.raises(ValueError):
            multiple_partition_axis(3, times=[1.0], n_groups=2)
        with pytest.raises(ValueError):
            multiple_partition_axis(3, times=[1.0], n_groups=4)

    def test_tasks_from_specs_wraps_protocol(self):
        tasks = tasks_from_specs("quorum-commit", [ScenarioSpec(), ScenarioSpec(n_sites=4)])
        assert [t.protocol for t in tasks] == ["quorum-commit"] * 2
        assert tasks[1].spec.n_sites == 4


class TestSpecHash:
    def test_stable_for_equal_specs(self):
        a = ScenarioSpec(partition=PartitionSchedule.simple(1.0, [1], [2, 3]))
        b = ScenarioSpec(partition=PartitionSchedule.simple(1.0, [1], [2, 3]))
        assert spec_hash("two-phase-commit", a) == spec_hash("two-phase-commit", b)

    def test_sensitive_to_protocol_and_every_axis(self):
        base = ScenarioSpec()
        baseline = spec_hash("two-phase-commit", base)
        variants = [
            spec_hash("three-phase-commit", base),
            spec_hash("two-phase-commit", ScenarioSpec(n_sites=4)),
            spec_hash("two-phase-commit", ScenarioSpec(seed=1)),
            spec_hash("two-phase-commit", ScenarioSpec(model="pessimistic")),
            spec_hash("two-phase-commit", ScenarioSpec(no_voters=frozenset({2}))),
            spec_hash(
                "two-phase-commit",
                ScenarioSpec(partition=PartitionSchedule.simple(1.0, [1], [2, 3])),
            ),
            spec_hash(
                "two-phase-commit",
                ScenarioSpec(crashes=CrashSchedule.single(2, at=1.0)),
            ),
            spec_hash("two-phase-commit", ScenarioSpec(latency=ConstantLatency(2.0))),
            spec_hash("two-phase-commit", ScenarioSpec(latency=UniformLatency(0.5, 1.0))),
        ]
        assert len({baseline, *variants}) == len(variants) + 1

    def test_integral_floats_hash_like_ints(self):
        assert spec_hash("two-phase-commit", ScenarioSpec(horizon=8)) == spec_hash(
            "two-phase-commit", ScenarioSpec(horizon=8.0)
        )
        assert spec_hash("two-phase-commit", ScenarioSpec(horizon=8.0)) != spec_hash(
            "two-phase-commit", ScenarioSpec(horizon=8.5)
        )

    def test_no_voter_enumeration_order_is_irrelevant(self):
        a = ScenarioSpec(no_voters=frozenset({4, 2, 3}))
        b = ScenarioSpec(no_voters=frozenset({3, 4, 2}))
        assert spec_hash("two-phase-commit", a) == spec_hash("two-phase-commit", b)


class TestRunSummaryJson:
    def test_round_trip_equality(self):
        engine = SweepEngine(workers=1)
        result = engine.run(
            [("terminating-three-phase-commit", ScenarioSpec(n_sites=3))],
            measures=("timeouts",),
        )
        summary = result[0]
        clone = RunSummary.from_json_bytes(summary.to_json_bytes())
        assert clone == summary

    def test_round_trip_preserves_infinite_waits(self):
        # Case 3.2.2.2 is the paper's unbounded wait: without the Section 6
        # rule the isolated slave times out in p and never decides.
        from repro.analysis.cases import build_case_scenario
        from repro.core.transient import PartitionCase

        scenario = build_case_scenario(PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS)
        result = SweepEngine(workers=1).run(
            [("terminating-three-phase-commit-no-transient", scenario.spec)],
            measures=("wait_in_w", "wait_in_p"),
        )
        summary = result[0]
        assert summary.blocked
        clone = RunSummary.from_json_bytes(summary.to_json_bytes())
        assert clone == summary
        waits = {**clone.metrics["wait_in_w"], **clone.metrics["wait_in_p"]}
        assert any(math.isinf(w) for w in waits.values())


class TestResultCache:
    def test_get_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32, 0) is None
        summary = SweepEngine(workers=1).run(
            [("two-phase-commit", ScenarioSpec())]
        )[0]
        cache.put(summary)
        assert cache.get(summary.spec_hash, summary.seed) == summary
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_distinct_seeds_cache_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(workers=1, cache=cache)
        spec_a = ScenarioSpec(latency=UniformLatency(0.25, 1.0), seed=0)
        spec_b = ScenarioSpec(latency=UniformLatency(0.25, 1.0), seed=1)
        engine.run([("two-phase-commit", spec_a), ("two-phase-commit", spec_b)])
        assert len(cache) == 2


class TestSweepEngine:
    def test_accepts_raw_protocol_spec_pairs(self):
        result = SweepEngine(workers=1).run(
            [("two-phase-commit", ScenarioSpec()), ("three-phase-commit", ScenarioSpec())]
        )
        assert [s.protocol for s in result] == [
            "two-phase-commit",
            "three-phase-commit",
        ]
        assert all(s.all_committed for s in result)

    def test_rejects_bad_worker_and_chunk_counts(self):
        with pytest.raises(ValueError):
            SweepEngine(workers=0)
        with pytest.raises(ValueError):
            SweepEngine(workers=1, chunk_size=0)

    def test_rejects_unknown_measures_before_running(self):
        with pytest.raises(KeyError, match="no_such_measure"):
            SweepEngine(workers=1).run(
                [("two-phase-commit", ScenarioSpec())], measures=("no_such_measure",)
            )

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            SweepEngine(workers=1).run([("not-a-protocol", ScenarioSpec())])

    def test_iter_summaries_streams_indexed_results(self):
        tasks = tasks_from_specs(
            "two-phase-commit", [ScenarioSpec(seed=s) for s in range(4)]
        )
        seen = dict(SweepEngine(workers=1).iter_summaries(tasks))
        assert sorted(seen) == [0, 1, 2, 3]
        assert all(s.all_committed for s in seen.values())

    def test_result_stats_and_throughput(self):
        result = SweepEngine(workers=1).run(
            tasks_from_specs("two-phase-commit", [ScenarioSpec(seed=s) for s in range(3)])
        )
        assert (result.total, result.executed, result.cache_hits) == (3, 3, 0)
        assert result.throughput > 0
        assert len(result) == 3
        assert result[0].protocol == "two-phase-commit"
