"""Shard partition + spill/merge: byte-identical to single-machine runs.

The acceptance bar of the distributed runner: ``merge_shards`` over any
complete set of shard spills must reproduce -- byte for byte -- the JSONL
spill and sink aggregates of a single-machine streaming run of the whole
task list, for both built-in spec kinds, at any worker count, with warm or
cold caches.  Partitioning is content-addressed, so it must also be stable
under task-list reordering and share cache keys with unsharded runs.
"""

import random

import pytest

from repro.engine import (
    JsonlSink,
    ScenarioGrid,
    ShardFormatError,
    ShardHeader,
    SweepEngine,
    SweepTask,
    merge_shards,
    read_shard,
    run_shard,
    shard_of,
    shard_tasks,
)
from repro.engine.sink import VerdictCounterSink
from repro.protocols.runner import ScenarioSpec
from repro.sim.failures import (
    ByzantineSpec,
    CrashSchedule,
    FaultPlan,
    LinkFault,
    RetransmitPolicy,
)
from repro.txn import DeadlockPolicy, RetryPolicy, ThroughputSpec
from repro.txn.sink import ThroughputSink

N_SHARDS = 3


@pytest.fixture(scope="module")
def sweep_tasks():
    """2 protocols x 3 onsets x 3 simple splits = 18 scenario tasks."""
    tasks = []
    for protocol in ("two-phase-commit", "terminating-three-phase-commit"):
        grid = ScenarioGrid.from_partition_sweep(
            protocol, 3, times=[0.5, 1.5, 2.5]
        )
        tasks.extend(grid.tasks())
    return tasks


@pytest.fixture(scope="module")
def tput_tasks():
    """2 protocols x (closed-loop + open-loop retry/Poisson/crash) x 2 seeds."""
    tasks = []
    for protocol in ("two-phase-commit", "terminating-three-phase-commit"):
        for seed in (0, 1):
            tasks.append(
                SweepTask(
                    protocol=protocol,
                    spec=ThroughputSpec(n_transactions=10, tx_rate=1.0, seed=seed),
                )
            )
            tasks.append(
                SweepTask(
                    protocol=protocol,
                    spec=ThroughputSpec(
                        n_transactions=10,
                        tx_rate=2.0,
                        arrival="poisson",
                        hotspot=1.0,
                        n_keys=3,
                        op_delay=0.2,
                        seed=seed,
                        crashes=CrashSchedule.single(2, 4.0, recover_at=8.0),
                        deadlock=DeadlockPolicy(wait_timeout=3.0),
                        retry=RetryPolicy(max_attempts=2, backoff=0.5),
                    ),
                )
            )
    return tasks


@pytest.fixture(scope="module")
def fault_tasks():
    """Mixed-kind grid under fault plans: lossy scenarios with and without
    the retransmission layer, a Byzantine master, and a lossy-retransmit
    throughput workload over the network lock transport."""
    lossy = FaultPlan(links=(LinkFault(loss=0.3),), seed=11)
    lossy_rtx = FaultPlan(
        links=(LinkFault(loss=0.3),), retransmit=RetransmitPolicy(), seed=11
    )
    byzantine = FaultPlan(byzantine=(ByzantineSpec(site=1),), seed=13)
    tasks = [
        SweepTask(
            protocol=protocol,
            spec=ScenarioSpec(n_sites=3, seed=seed, faults=plan),
        )
        for protocol in ("two-phase-commit", "terminating-three-phase-commit")
        for plan in (lossy, lossy_rtx, byzantine)
        for seed in (0, 1)
    ]
    for seed in (0, 1):
        tasks.append(
            SweepTask(
                protocol="two-phase-commit",
                spec=ThroughputSpec(
                    n_transactions=8,
                    tx_rate=2.0,
                    seed=seed,
                    faults=lossy_rtx,
                    retry=RetryPolicy(max_attempts=2, backoff=0.5),
                ),
            )
        )
    return tasks


class TestShardPartition:
    def test_shards_cover_every_task_exactly_once(self, sweep_tasks):
        seen = []
        for index in range(N_SHARDS):
            seen.extend(shard_tasks(sweep_tasks, index, N_SHARDS))
        assert sorted(global_index for global_index, _ in seen) == list(
            range(len(sweep_tasks))
        )

    def test_partition_is_stable_under_reordering(self, sweep_tasks):
        shuffled = list(sweep_tasks)
        random.Random(7).shuffle(shuffled)
        for index in range(N_SHARDS):
            original = {t.spec_hash for _, t in shard_tasks(sweep_tasks, index, N_SHARDS)}
            reordered = {t.spec_hash for _, t in shard_tasks(shuffled, index, N_SHARDS)}
            assert original == reordered

    def test_single_shard_owns_everything(self, sweep_tasks):
        assert len(shard_tasks(sweep_tasks, 0, 1)) == len(sweep_tasks)

    def test_membership_comes_from_the_spec_hash_alone(self, sweep_tasks):
        for global_index, task in shard_tasks(sweep_tasks, 1, N_SHARDS):
            assert shard_of(task.spec_hash, N_SHARDS) == 1

    def test_invalid_parameters_are_rejected(self, sweep_tasks):
        with pytest.raises(ValueError, match="shard_count"):
            shard_tasks(sweep_tasks, 0, 0)
        with pytest.raises(ValueError, match="shard_index"):
            shard_tasks(sweep_tasks, 3, 3)
        with pytest.raises(ValueError, match="shard_index"):
            shard_tasks(sweep_tasks, -1, 3)
        with pytest.raises(ValueError, match="shard_count"):
            shard_of("ff", 0)


def _shard_all(tasks, tmp_path, *, workers=1, cache=None):
    spills = []
    for index in range(N_SHARDS):
        spill = tmp_path / f"shard-{index}.jsonl"
        engine = SweepEngine(workers=workers, cache=cache, chunk_size=1)
        run_shard(tasks, index, N_SHARDS, spill, engine=engine)
        spills.append(spill)
    return spills


class TestMergeByteIdentity:
    """The ISSUE acceptance criterion, for both built-in spec kinds."""

    def test_sweep_kind_merge_equals_single_machine_run(self, sweep_tasks, tmp_path):
        single = tmp_path / "single.jsonl"
        counter = VerdictCounterSink()
        SweepEngine(workers=1).run_streaming(
            sweep_tasks, sinks=[counter, JsonlSink(single)]
        )
        spills = _shard_all(sweep_tasks, tmp_path)
        merged = tmp_path / "merged.jsonl"
        result = merge_shards(spills, jsonl=merged)
        assert merged.read_bytes() == single.read_bytes()
        assert result.kind_sinks["scenario"].rows() == counter.rows()

    def test_throughput_kind_merge_equals_single_machine_run(self, tput_tasks, tmp_path):
        single = tmp_path / "single.jsonl"
        sink = ThroughputSink()
        SweepEngine(workers=1).run_streaming(
            tput_tasks, sinks=[sink, JsonlSink(single)]
        )
        spills = _shard_all(tput_tasks, tmp_path)
        merged = tmp_path / "merged.jsonl"
        result = merge_shards(spills, jsonl=merged)
        assert merged.read_bytes() == single.read_bytes()
        assert result.kind_sinks["throughput"].rows() == sink.rows()

    def test_fault_plan_merge_equals_single_machine_run(self, fault_tasks, tmp_path):
        # Fault realizations come from the plan's seeded RNG, so sharding a
        # lossy/Byzantine grid must stay byte-identical to one machine --
        # and the mixed scenario+throughput spill must interleave stably.
        single = tmp_path / "single.jsonl"
        SweepEngine(workers=1).run_streaming(fault_tasks, sinks=JsonlSink(single))
        spills = _shard_all(fault_tasks, tmp_path, workers=2)
        merged = tmp_path / "merged.jsonl"
        result = merge_shards(spills, jsonl=merged)
        assert merged.read_bytes() == single.read_bytes()
        assert set(result.kind_sinks) == {"scenario", "throughput"}

    def test_merge_is_independent_of_spill_argument_order(self, sweep_tasks, tmp_path):
        spills = _shard_all(sweep_tasks, tmp_path)
        forward = merge_shards(spills, jsonl=tmp_path / "fwd.jsonl")
        backward = merge_shards(list(reversed(spills)), jsonl=tmp_path / "bwd.jsonl")
        assert (tmp_path / "fwd.jsonl").read_bytes() == (
            tmp_path / "bwd.jsonl"
        ).read_bytes()
        assert forward.records == backward.records

    def test_sharded_workers_match_serial_single_machine(self, sweep_tasks, tmp_path):
        single = tmp_path / "single.jsonl"
        SweepEngine(workers=1).run_streaming(sweep_tasks, sinks=JsonlSink(single))
        spills = _shard_all(sweep_tasks, tmp_path, workers=2)
        merged = tmp_path / "merged.jsonl"
        merge_shards(spills, jsonl=merged)
        assert merged.read_bytes() == single.read_bytes()

    def test_shards_share_the_result_cache_with_single_runs(self, sweep_tasks, tmp_path):
        cache = tmp_path / "cache"
        _shard_all(sweep_tasks, tmp_path, cache=cache)
        warm = SweepEngine(workers=1, cache=cache).run_streaming(
            sweep_tasks, sinks=JsonlSink(tmp_path / "warm.jsonl")
        )
        assert warm.executed == 0
        assert warm.cache_hits == len(sweep_tasks)


class TestSpillFormat:
    def test_header_is_self_describing(self, sweep_tasks, tmp_path):
        spill = tmp_path / "shard-1.jsonl"
        run_shard(sweep_tasks, 1, N_SHARDS, spill, engine=SweepEngine(workers=1))
        header, records = read_shard(spill)
        assert header.shard_index == 1
        assert header.shard_count == N_SHARDS
        assert header.total_tasks == len(sweep_tasks)
        assert header.shard_tasks == len(records)
        assert header.spec_kinds == ("scenario",)

    def test_empty_shard_still_writes_a_header(self, tput_tasks, tmp_path):
        # 4 tasks over many shards: some shard is necessarily empty.
        counts = {
            index: len(shard_tasks(tput_tasks, index, 16)) for index in range(16)
        }
        empty = next(index for index, count in counts.items() if count == 0)
        spill = tmp_path / "empty.jsonl"
        run_shard(tput_tasks, empty, 16, spill, engine=SweepEngine(workers=1))
        header, records = read_shard(spill)
        assert header.shard_tasks == 0
        assert records == []

    def test_truncated_spill_is_rejected(self, sweep_tasks, tmp_path):
        spill = tmp_path / "shard-0.jsonl"
        run_shard(sweep_tasks, 0, N_SHARDS, spill, engine=SweepEngine(workers=1))
        lines = spill.read_bytes().splitlines(keepends=True)
        assert len(lines) > 2
        (tmp_path / "cut.jsonl").write_bytes(b"".join(lines[:-1]))
        with pytest.raises(ShardFormatError, match="truncated"):
            read_shard(tmp_path / "cut.jsonl")

    def test_headerless_file_is_rejected(self, tmp_path):
        (tmp_path / "noheader.jsonl").write_bytes(b'{"index": 0, "summary": {}}\n')
        with pytest.raises(ShardFormatError, match="shard-header"):
            read_shard(tmp_path / "noheader.jsonl")

    def test_future_format_version_is_rejected(self, tmp_path):
        header = ShardHeader(0, 1, 0, 0, (), format=99)
        payload = header.to_json_dict()
        import json

        (tmp_path / "future.jsonl").write_text(json.dumps(payload) + "\n")
        with pytest.raises(ShardFormatError, match="format 99"):
            read_shard(tmp_path / "future.jsonl")

    def test_duplicated_index_masking_a_missing_one_is_rejected(self, sweep_tasks, tmp_path):
        # The record count still matches the header, so only an explicit
        # duplicate check catches this corruption -- naming the index.
        spill = tmp_path / "shard-0.jsonl"
        run_shard(sweep_tasks, 0, N_SHARDS, spill, engine=SweepEngine(workers=1))
        lines = spill.read_bytes().splitlines(keepends=True)
        assert len(lines) > 3
        (tmp_path / "dup.jsonl").write_bytes(
            b"".join(lines[:-1]) + lines[-2]  # last record replaced by a dup
        )
        import json

        duplicated = json.loads(lines[-2])["index"]
        with pytest.raises(
            ShardFormatError, match=f"index {duplicated} appears twice"
        ):
            read_shard(tmp_path / "dup.jsonl")

    def test_spill_appears_atomically_on_close(self, sweep_tasks, tmp_path):
        # A killed run_shard must never leave a truncated spill at the
        # final path: the spill is written to a temp sibling and renamed
        # into place only on close().
        from repro.engine import ListSink
        from repro.engine.shard import _ShardSpillSink

        header = ShardHeader(0, 1, len(sweep_tasks), 1, ("scenario",))
        spill = tmp_path / "atomic.jsonl"
        sink = _ShardSpillSink(spill, header, [0])
        collector = ListSink()
        SweepEngine(workers=1).run_streaming(sweep_tasks[:1], sinks=[collector])
        sink.accept(0, collector.summaries[0])
        assert not spill.exists()  # mid-run: nothing at the final path
        sink.close()
        assert spill.exists()
        header_back, records = read_shard(spill)
        assert header_back == header
        assert len(records) == 1
        # No temp debris left behind after the rename.
        assert list(tmp_path.iterdir()) == [spill]


class TestMergeValidation:
    def test_missing_shard_is_named(self, sweep_tasks, tmp_path):
        spills = _shard_all(sweep_tasks, tmp_path)
        with pytest.raises(ShardFormatError, match=r"missing shard\(s\) 1"):
            merge_shards([spills[0], spills[2]])

    def test_allow_partial_merges_what_is_there(self, sweep_tasks, tmp_path):
        spills = _shard_all(sweep_tasks, tmp_path)
        partial = merge_shards([spills[0], spills[2]], require_complete=False)
        full = merge_shards(spills)
        assert 0 < partial.records < full.records

    def test_duplicate_shard_is_rejected(self, sweep_tasks, tmp_path):
        spills = _shard_all(sweep_tasks, tmp_path)
        with pytest.raises(ShardFormatError, match="twice"):
            merge_shards([spills[0], spills[0], spills[1]])

    def test_mismatched_grids_are_rejected(self, sweep_tasks, tput_tasks, tmp_path):
        sweep_spill = tmp_path / "sweep-0.jsonl"
        run_shard(sweep_tasks, 0, N_SHARDS, sweep_spill, engine=SweepEngine(workers=1))
        tput_spill = tmp_path / "tput-1.jsonl"
        run_shard(tput_tasks, 1, N_SHARDS, tput_spill, engine=SweepEngine(workers=1))
        with pytest.raises(ShardFormatError, match="total_tasks"):
            merge_shards([sweep_spill, tput_spill])

    def test_empty_merge_set_is_rejected(self):
        with pytest.raises(ShardFormatError, match="no shard spills"):
            merge_shards([])

    def test_complete_shards_with_missing_tasks_are_rejected(self, tmp_path):
        # Headers are internally consistent (every shard present) but the
        # records jointly cover none of the 4 task indices -- the shape of
        # spills re-run against a different grid of the same size.
        import json

        for index in range(2):
            header = ShardHeader(index, 2, 4, 0, ())
            (tmp_path / f"s{index}.jsonl").write_text(
                json.dumps(header.to_json_dict()) + "\n"
            )
        with pytest.raises(ShardFormatError, match="4 of 4 task"):
            merge_shards([tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"])
        partial = merge_shards(
            [tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"], require_complete=False
        )
        assert partial.records == 0

    def test_malformed_header_fields_are_format_errors(self, tmp_path):
        import json

        (tmp_path / "bad.jsonl").write_text(
            json.dumps({"kind": "shard-header", "format": 1}) + "\n"
        )
        with pytest.raises(ShardFormatError, match="shard_index"):
            read_shard(tmp_path / "bad.jsonl")

    def test_non_integer_record_index_is_a_format_error(self, tmp_path):
        import json

        header = ShardHeader(0, 1, 1, 1, ("scenario",))
        lines = [
            json.dumps(header.to_json_dict()),
            json.dumps({"index": "0", "summary": {}}),
        ]
        (tmp_path / "bad.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(ShardFormatError, match="not an integer"):
            read_shard(tmp_path / "bad.jsonl")
