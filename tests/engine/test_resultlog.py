"""Durable result log: sealed segments, shard resume, resumable merge.

The acceptance bar of the crash-safe pipeline: an interrupted
``merge_result_log`` resumed from its checkpoint must reproduce -- byte
for byte -- the merged JSONL and sink aggregates of an uninterrupted
single-machine run, for the sweep, throughput AND modelcheck kinds, at
every possible interruption point, with late or re-run shards folded
exactly once.  Segments must never exist half-written: any file matching
the segment name pattern is complete and verifiable.
"""

import json

import pytest

from repro.core.reachability import FAILURE_FREE, SINGLE_CRASH
from repro.engine import (
    InjectedMergeCrash,
    JsonlSink,
    MergeCursor,
    ResultLogError,
    ResultLogWriter,
    ScenarioGrid,
    ShardFormatError,
    SweepEngine,
    SweepTask,
    discover_segments,
    merge_result_log,
    read_segment,
    run_shard_log,
    shard_tasks,
    write_segment,
)
from repro.engine.resultlog import CHECKPOINT_NAME, SegmentHeader, segment_name
from repro.engine.sink import VerdictCounterSink
from repro.modelcheck.sink import ModelCheckSink
from repro.modelcheck.spec import ModelCheckSpec
from repro.txn import ThroughputSpec
from repro.txn.sink import ThroughputSink

N_SHARDS = 3


@pytest.fixture(scope="module")
def sweep_tasks():
    """2 protocols x 3 onsets x 3 simple splits = 18 scenario tasks."""
    tasks = []
    for protocol in ("two-phase-commit", "terminating-three-phase-commit"):
        grid = ScenarioGrid.from_partition_sweep(protocol, 3, times=[0.5, 1.5, 2.5])
        tasks.extend(grid.tasks())
    return tasks


@pytest.fixture(scope="module")
def tput_tasks():
    """2 protocols x 2 seeds of a small closed-loop workload."""
    return [
        SweepTask(
            protocol=protocol,
            spec=ThroughputSpec(n_transactions=8, tx_rate=1.0, seed=seed),
        )
        for protocol in ("two-phase-commit", "terminating-three-phase-commit")
        for seed in (0, 1)
    ]


@pytest.fixture(scope="module")
def mc_tasks():
    """2 protocols x 2 exhaustive envelopes of bounded model checking."""
    return [
        SweepTask(protocol=protocol, spec=ModelCheckSpec(fault=fault))
        for protocol in ("two-phase-commit", "three-phase-commit")
        for fault in (FAILURE_FREE, SINGLE_CRASH)
    ]


def _single_machine(tasks, path, sinks=()):
    SweepEngine(workers=1).run_streaming(tasks, sinks=[*sinks, JsonlSink(path)])
    return path


def _log_all(tasks, log_dir, *, n_shards=N_SHARDS, segment_records=4):
    for index in range(n_shards):
        run_shard_log(
            tasks,
            index,
            n_shards,
            log_dir,
            engine=SweepEngine(workers=1),
            segment_records=segment_records,
        )
    return log_dir


def _fake_segment(path, *, indices, total=100, shard=0, seg=0, hashes=None):
    """Seal a synthetic segment of scenario-shaped payload stubs."""
    header = SegmentHeader(
        shard_index=shard, shard_count=1, total_tasks=total, segment_index=seg
    )
    records = [
        (index, {"spec_hash": (hashes or {}).get(index, f"h{index}")})
        for index in indices
    ]
    write_segment(path, header, records)
    return path


class TestSegmentFormat:
    def test_roundtrip_seals_and_reads(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(0, 0), indices=[3, 1, 7])
        header, footer, records = read_segment(path)
        assert header.shard_index == 0
        assert footer.records == 3
        assert [index for index, _ in records] == [3, 1, 7]
        # Sealing is atomic: no temp debris survives a completed write.
        assert list(tmp_path.iterdir()) == [path]

    def test_unsealed_segment_is_rejected(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(0, 0), indices=[0, 1])
        lines = path.read_bytes().splitlines(keepends=True)
        cut = tmp_path / segment_name(0, 1)
        cut.write_bytes(b"".join(lines[:-1]))  # drop the footer
        with pytest.raises(ResultLogError, match="unsealed"):
            read_segment(cut)

    def test_missing_record_is_a_count_mismatch(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(0, 0), indices=[0, 1, 2])
        lines = path.read_bytes().splitlines(keepends=True)
        cut = tmp_path / segment_name(0, 1)
        cut.write_bytes(b"".join(lines[:2] + lines[-1:]))  # drop 2 records
        with pytest.raises(ResultLogError, match="promises 3"):
            read_segment(cut)

    def test_corrupted_record_is_a_hash_mismatch(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(0, 0), indices=[0, 1])
        data = path.read_bytes().replace(b'"h0"', b'"hX"')
        bad = tmp_path / segment_name(0, 1)
        bad.write_bytes(data)
        with pytest.raises(ResultLogError, match="content hash mismatch"):
            read_segment(bad)

    def test_duplicate_index_within_a_segment_is_rejected(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(0, 0), indices=[5, 5])
        with pytest.raises(ResultLogError, match="index 5 appears twice"):
            read_segment(path)

    def test_out_of_range_index_is_rejected(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(0, 0), indices=[100])
        with pytest.raises(ResultLogError, match="outside"):
            read_segment(path)

    def test_future_format_version_is_rejected(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(0, 0), indices=[0])
        data = path.read_bytes().replace(b'"format":1', b'"format":99')
        path.write_bytes(data)
        with pytest.raises(ResultLogError, match="format 99"):
            read_segment(path)

    def test_discovery_ignores_non_segment_files(self, tmp_path):
        path = _fake_segment(tmp_path / segment_name(2, 0), indices=[0])
        (tmp_path / f".{segment_name(2, 1)}.tmp-123").write_bytes(b"garbage")
        (tmp_path / CHECKPOINT_NAME).write_text("{}")
        (tmp_path / "merged.jsonl").write_text("")
        assert discover_segments(tmp_path) == {2: [(0, path)]}

    def test_segment_numbering_gap_is_rejected(self, tmp_path):
        _fake_segment(tmp_path / segment_name(0, 0), indices=[0])
        _fake_segment(tmp_path / segment_name(0, 2), indices=[1], seg=2)
        with pytest.raises(ResultLogError, match="gap"):
            discover_segments(tmp_path)


class TestShardResume:
    def test_rerun_executes_nothing_and_appends_nothing(self, sweep_tasks, tmp_path):
        log = _log_all(sweep_tasks, tmp_path / "log")
        result = run_shard_log(
            sweep_tasks, 0, N_SHARDS, log, engine=SweepEngine(workers=1)
        )
        assert result.appended == 0
        assert result.segments_sealed == 0
        assert result.skipped == result.shard_tasks
        assert result.stats.total == 0  # nothing re-executed

    def test_crash_artifact_state_resumes_from_last_sealed_segment(
        self, sweep_tasks, tmp_path
    ):
        # A killed shard leaves a prefix of sealed segments plus ignorable
        # temp debris -- exactly what deleting the last sealed segment and
        # dropping a stray .tmp file reproduces.
        log = tmp_path / "log"
        run_shard_log(
            sweep_tasks, 0, N_SHARDS, log,
            engine=SweepEngine(workers=1), segment_records=2,
        )
        segments = discover_segments(log)[0]
        assert len(segments) >= 2
        last_index, last_path = segments[-1]
        _, _, lost = read_segment(last_path)
        last_path.unlink()
        (log / f".{segment_name(0, last_index)}.tmp-999").write_bytes(b"part")
        resumed = run_shard_log(
            sweep_tasks, 0, N_SHARDS, log,
            engine=SweepEngine(workers=1), segment_records=2,
        )
        assert resumed.appended == len(lost)
        assert resumed.skipped == resumed.shard_tasks - len(lost)
        # The healed log merges byte-identically to a single-machine run.
        for index in range(1, N_SHARDS):
            run_shard_log(
                sweep_tasks, index, N_SHARDS, log, engine=SweepEngine(workers=1)
            )
        single = _single_machine(sweep_tasks, tmp_path / "single.jsonl")
        merge_result_log(log, jsonl=tmp_path / "merged.jsonl")
        assert (tmp_path / "merged.jsonl").read_bytes() == single.read_bytes()

    def test_log_for_a_different_grid_is_rejected(self, sweep_tasks, tmp_path):
        log = _log_all(sweep_tasks, tmp_path / "log")
        with pytest.raises(ResultLogError, match="different grid"):
            run_shard_log(
                sweep_tasks[:5], 0, N_SHARDS, log, engine=SweepEngine(workers=1)
            )

    def test_empty_shard_seals_a_marker_segment(self, tput_tasks, tmp_path):
        # 4 tasks over 16 shards: some shard is necessarily empty, and the
        # merge must still see it as present.
        counts = {
            index: len(shard_tasks(tput_tasks, index, 16)) for index in range(16)
        }
        empty = next(index for index, count in counts.items() if count == 0)
        log = tmp_path / "log"
        result = run_shard_log(
            tput_tasks, empty, 16, log, engine=SweepEngine(workers=1)
        )
        assert result.segments_sealed == 1
        header, footer, records = read_segment(log / segment_name(empty, 0))
        assert footer.records == 0
        assert records == []

    def test_writer_rejects_nonpositive_segment_records(self, tmp_path):
        with pytest.raises(ValueError, match="segment_records"):
            ResultLogWriter(
                tmp_path, shard_index=0, shard_count=1, total_tasks=0,
                global_indices=[], segment_records=0,
            )


class TestLogMergeByteIdentity:
    """Uninterrupted log merges equal single-machine runs, per kind."""

    def test_sweep_kind(self, sweep_tasks, tmp_path):
        counter = VerdictCounterSink()
        single = _single_machine(sweep_tasks, tmp_path / "single.jsonl", [counter])
        log = _log_all(sweep_tasks, tmp_path / "log")
        result = merge_result_log(log, jsonl=tmp_path / "merged.jsonl")
        assert (tmp_path / "merged.jsonl").read_bytes() == single.read_bytes()
        assert result.kind_sinks["scenario"].rows() == counter.rows()
        assert result.deduped == 0

    def test_throughput_kind(self, tput_tasks, tmp_path):
        sink = ThroughputSink()
        single = _single_machine(tput_tasks, tmp_path / "single.jsonl", [sink])
        log = _log_all(tput_tasks, tmp_path / "log", segment_records=2)
        result = merge_result_log(log, jsonl=tmp_path / "merged.jsonl")
        assert (tmp_path / "merged.jsonl").read_bytes() == single.read_bytes()
        assert result.kind_sinks["throughput"].rows() == sink.rows()

    def test_modelcheck_kind(self, mc_tasks, tmp_path):
        sink = ModelCheckSink()
        single = _single_machine(mc_tasks, tmp_path / "single.jsonl", [sink])
        log = _log_all(mc_tasks, tmp_path / "log", segment_records=2)
        result = merge_result_log(log, jsonl=tmp_path / "merged.jsonl")
        assert (tmp_path / "merged.jsonl").read_bytes() == single.read_bytes()
        assert result.kind_sinks["modelcheck"].rows() == sink.rows()

    def test_mixed_kind_log(self, sweep_tasks, tput_tasks, mc_tasks, tmp_path):
        tasks = [*sweep_tasks, *tput_tasks, *mc_tasks]
        single = _single_machine(tasks, tmp_path / "single.jsonl")
        log = _log_all(tasks, tmp_path / "log")
        result = merge_result_log(log, jsonl=tmp_path / "merged.jsonl")
        assert (tmp_path / "merged.jsonl").read_bytes() == single.read_bytes()
        assert set(result.kind_sinks) == {"scenario", "throughput", "modelcheck"}


class TestMergeCrashResume:
    """The acceptance criterion: kill mid-fold, resume, byte-identical."""

    @pytest.mark.parametrize("kind", ["sweep", "tput", "mc"])
    def test_killed_merge_resumes_byte_identical(self, kind, tmp_path, request):
        tasks = request.getfixturevalue(f"{kind}_tasks")
        single = _single_machine(tasks, tmp_path / "single.jsonl")
        log = _log_all(tasks, tmp_path / "log", segment_records=3)
        baseline = merge_result_log(
            log,
            jsonl=tmp_path / "base.jsonl",
            checkpoint=tmp_path / "base.ckpt",
        )
        merged = tmp_path / "merged.jsonl"
        crash_at = max(1, baseline.records // 2)
        with pytest.raises(InjectedMergeCrash):
            merge_result_log(
                log, jsonl=merged, batch_records=1, crash_after=crash_at
            )
        resumed = merge_result_log(log, jsonl=merged, batch_records=1, resume=True)
        assert merged.read_bytes() == single.read_bytes()
        assert resumed.replayed == crash_at
        for name, sink in resumed.kind_sinks.items():
            assert sink.rows() == baseline.kind_sinks[name].rows()

    def test_every_interruption_point_resumes_exactly_once(
        self, sweep_tasks, tmp_path
    ):
        # With batch_records=1, every record boundary is a commit point;
        # crashing after each possible count and resuming must always
        # converge to the identical spill with nothing double-folded.
        single = _single_machine(sweep_tasks, tmp_path / "single.jsonl")
        log = _log_all(sweep_tasks, tmp_path / "log")
        total = len(sweep_tasks)
        for crash_at in range(1, total + 1):
            merged = tmp_path / f"merged-{crash_at}.jsonl"
            checkpoint = tmp_path / f"ckpt-{crash_at}.json"
            with pytest.raises(InjectedMergeCrash):
                merge_result_log(
                    log, jsonl=merged, checkpoint=checkpoint,
                    batch_records=1, crash_after=crash_at,
                )
            result = merge_result_log(
                log, jsonl=merged, checkpoint=checkpoint,
                batch_records=1, resume=True,
            )
            assert result.records == total
            assert merged.read_bytes() == single.read_bytes(), crash_at

    def test_rerun_shard_records_fold_exactly_once(self, sweep_tasks, tmp_path):
        single = _single_machine(sweep_tasks, tmp_path / "single.jsonl")
        log = _log_all(sweep_tasks, tmp_path / "log")
        # A re-run shard seals its records again in fresh segments.
        segments = discover_segments(log)[1]
        duplicated = []
        for _, path in segments:
            _, _, records = read_segment(path)
            duplicated.extend(records)
        header, _, _ = read_segment(segments[0][1])
        next_seg = len(segments)
        write_segment(
            log / segment_name(1, next_seg),
            SegmentHeader(
                shard_index=1,
                shard_count=header.shard_count,
                total_tasks=header.total_tasks,
                segment_index=next_seg,
            ),
            duplicated,
        )
        result = merge_result_log(log, jsonl=tmp_path / "merged.jsonl")
        assert result.deduped == len(duplicated)
        assert result.records == len(sweep_tasks)
        assert (tmp_path / "merged.jsonl").read_bytes() == single.read_bytes()

    def test_conflicting_rerun_is_rejected_naming_the_index(
        self, sweep_tasks, tmp_path
    ):
        log = _log_all(sweep_tasks, tmp_path / "log")
        segments = discover_segments(log)[1]
        _, _, records = read_segment(segments[0][1])
        index, payload = records[0]
        clashing = dict(payload, spec_hash="0" * 64)
        header, _, _ = read_segment(segments[0][1])
        write_segment(
            log / segment_name(1, len(segments)),
            SegmentHeader(
                shard_index=1,
                shard_count=header.shard_count,
                total_tasks=header.total_tasks,
                segment_index=len(segments),
            ),
            [(index, clashing)],
        )
        with pytest.raises(ResultLogError, match=f"index {index} re-sealed"):
            merge_result_log(log)

    def test_late_shard_invalidates_the_checkpoint(self, sweep_tasks, tmp_path):
        # Crash a partial merge, then let the missing shard arrive: its
        # records sort into already-folded territory, so the committed
        # prefix no longer matches and the resume must refuse (restarting
        # without resume is what keeps the output byte-identical).
        log = tmp_path / "log"
        for index in (0, 2):
            run_shard_log(
                sweep_tasks, index, N_SHARDS, log, engine=SweepEngine(workers=1)
            )
        partial_count = len(shard_tasks(sweep_tasks, 0, N_SHARDS)) + len(
            shard_tasks(sweep_tasks, 2, N_SHARDS)
        )
        # The missing shard's earliest global index must land inside the
        # committed prefix, or the checkpoint would legitimately still
        # apply after the late arrival.
        assert min(
            g for g, _ in shard_tasks(sweep_tasks, 1, N_SHARDS)
        ) < partial_count
        with pytest.raises(InjectedMergeCrash):
            merge_result_log(
                log, jsonl=tmp_path / "m.jsonl",
                require_complete=False, batch_records=1,
                crash_after=partial_count,
            )
        run_shard_log(
            sweep_tasks, 1, N_SHARDS, log, engine=SweepEngine(workers=1)
        )
        with pytest.raises(ResultLogError, match="no longer matches"):
            merge_result_log(log, jsonl=tmp_path / "m.jsonl", resume=True)
        # A fresh merge (no resume) of the now-complete log is identical.
        single = _single_machine(sweep_tasks, tmp_path / "single.jsonl")
        merge_result_log(log, jsonl=tmp_path / "m.jsonl")
        assert (tmp_path / "m.jsonl").read_bytes() == single.read_bytes()

    def test_resume_with_missing_jsonl_is_rejected(self, sweep_tasks, tmp_path):
        log = _log_all(sweep_tasks, tmp_path / "log")
        merged = tmp_path / "merged.jsonl"
        with pytest.raises(InjectedMergeCrash):
            merge_result_log(log, jsonl=merged, batch_records=2, crash_after=4)
        merged.unlink()
        with pytest.raises(ResultLogError, match="missing"):
            merge_result_log(log, jsonl=merged, resume=True)

    def test_missing_shard_is_named(self, sweep_tasks, tmp_path):
        log = tmp_path / "log"
        for index in (0, 2):
            run_shard_log(
                sweep_tasks, index, N_SHARDS, log, engine=SweepEngine(workers=1)
            )
        with pytest.raises(ShardFormatError, match=r"missing shard\(s\) 1"):
            merge_result_log(log)
        partial = merge_result_log(log, require_complete=False)
        assert 0 < partial.records < len(sweep_tasks)

    def test_empty_log_directory_is_rejected(self, tmp_path):
        with pytest.raises(ResultLogError, match="no sealed segments"):
            merge_result_log(tmp_path)


class TestMergeCursor:
    def test_checkpoint_roundtrip(self, tmp_path):
        cursor = MergeCursor(
            shard_count=3, total_tasks=48, records_folded=10,
            jsonl_bytes=1234, fold_hash="ab" * 32,
            offsets={"0": {"0": 4, "1": 2}, "2": {"0": 4}},
        )
        cursor.save(tmp_path / "ckpt.json")
        loaded = MergeCursor.load(tmp_path / "ckpt.json")
        assert loaded == cursor

    def test_load_missing_returns_none(self, tmp_path):
        assert MergeCursor.load(tmp_path / "absent.json") is None

    def test_corrupt_checkpoint_is_rejected(self, tmp_path):
        (tmp_path / "ckpt.json").write_text("{not json")
        with pytest.raises(ResultLogError, match="not JSON"):
            MergeCursor.load(tmp_path / "ckpt.json")

    def test_foreign_grid_checkpoint_is_rejected(self, sweep_tasks, tmp_path):
        log = _log_all(sweep_tasks, tmp_path / "log")
        MergeCursor(shard_count=99, total_tasks=7).save(log / CHECKPOINT_NAME)
        with pytest.raises(ResultLogError, match="different grid"):
            merge_result_log(log, resume=True)

    def test_commits_happen_per_batch(self, sweep_tasks, tmp_path):
        log = _log_all(sweep_tasks, tmp_path / "log")
        merged = tmp_path / "merged.jsonl"
        with pytest.raises(InjectedMergeCrash):
            merge_result_log(log, jsonl=merged, batch_records=4, crash_after=10)
        cursor = MergeCursor.load(log / CHECKPOINT_NAME)
        # Two full batches committed before the crash at record 10; the
        # committed jsonl offset points at a record boundary.
        assert cursor.records_folded == 8
        assert sum(
            count for segs in cursor.offsets.values() for count in segs.values()
        ) == 8
        lines = merged.read_bytes()[: cursor.jsonl_bytes]
        assert lines.endswith(b"\n")
        assert lines.count(b"\n") == 8


class TestObsCounters:
    def test_log_and_merge_emit_resultlog_metrics(self, sweep_tasks, tmp_path):
        from repro.obs.metrics import MetricsRegistry, activate

        registry = MetricsRegistry()
        with activate(registry):
            _log_all(sweep_tasks, tmp_path / "log")
            _log_all(sweep_tasks, tmp_path / "log")  # re-run: all skips
            merge_result_log(tmp_path / "log", jsonl=tmp_path / "m.jsonl")
        snapshot = json.dumps(registry.snapshot())
        assert "resultlog.segments.sealed" in snapshot
        assert "resultlog.records.appended" in snapshot
        assert "resultlog.resume.skipped" in snapshot
        assert "resultlog.checkpoint.commits" in snapshot
        assert "resultlog.records.deduped" in snapshot
