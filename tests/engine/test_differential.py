"""The differential matrix: checker vs simulator on 200+ seeded configurations.

Two independent implementations of the paper's semantics -- the timed
event-driven simulator and the untimed exhaustive explorer -- run the same
configurations; any verdict disagreement (under the directional relation
documented in :mod:`repro.modelcheck.differential`) fails the test with
both sides' evidence: the checker's minimal counterexample trace next to
the simulator run's decision vector.

Also pins the MODELCHECK kind's engine contract: byte-identical JSONL
spills across worker counts, and shard/merge runs byte-identical to a
single-machine streaming run.
"""

import pytest

from repro.core.reachability import FAILURE_FREE, PARTITION, SINGLE_CRASH
from repro.engine import JsonlSink, SweepEngine
from repro.engine.shard import merge_shards, run_shard
from repro.experiments.modelcheck import modelcheck_tasks
from repro.modelcheck.checker import check_model
from repro.modelcheck.differential import (
    DifferentialConfig,
    cross_validate,
    sample_configs,
)
from repro.modelcheck.protocols import checkable_protocols

#: The matrix the satellite demands: >= 200 seeded configurations across
#: protocols x n in {2, 3} x fault envelopes x scripted-vote patterns.
MATRIX_SIZE = 200
MATRIX_SEED = 2026


def _config_key(config):
    return (config.protocol, config.n_sites, config.fault, config.no_voters)


@pytest.fixture(scope="module")
def matrix_reports():
    """Cross-validate the whole matrix once; checker results are memoized."""
    configs = sample_configs(MATRIX_SIZE, seed=MATRIX_SEED)
    checkers = {}
    reports = []
    for config in configs:
        key = _config_key(config)
        if key not in checkers:
            checkers[key] = check_model(config.protocol, config.modelcheck_spec())
        reports.append(cross_validate(config, checker=checkers[key]))
    return reports


class TestDifferentialMatrix:
    def test_matrix_size_and_coverage(self, matrix_reports):
        assert len(matrix_reports) == MATRIX_SIZE
        seen_protocols = {r.config.protocol for r in matrix_reports}
        assert seen_protocols == set(checkable_protocols())
        assert {r.config.n_sites for r in matrix_reports} == {2, 3}
        assert {r.config.fault for r in matrix_reports} == {
            FAILURE_FREE,
            SINGLE_CRASH,
            PARTITION,
        }
        assert any(r.config.no_voters for r in matrix_reports)

    def test_zero_disagreements(self, matrix_reports):
        failures = [r for r in matrix_reports if not r.agreed]
        assert not failures, "\n\n".join(r.format_failures() for r in failures)

    def test_every_config_ran_simulator_schedules(self, matrix_reports):
        assert all(r.sim_runs >= 1 for r in matrix_reports)
        total = sum(r.sim_runs for r in matrix_reports)
        assert total > MATRIX_SIZE  # fault envelopes fan out over placements

    def test_violation_branch_is_not_vacuous(self, matrix_reports):
        """The agreement must be exercised on real sim-side violations."""
        violated = [
            r
            for r in matrix_reports
            if r.sim_verdicts.get("violated", 0) > 0
        ]
        assert violated, "no sampled configuration produced a sim violation"
        for report in violated:
            summary = report.checker.to_summary(spec_hash="t")
            assert summary.atomicity_violated

    def test_sampling_is_deterministic(self):
        first = sample_configs(25, seed=7)
        second = sample_configs(25, seed=7)
        assert first == second
        assert sample_configs(25, seed=8) != first


def test_failure_free_exact_match_branch():
    """Failure-free configs compare verdicts exactly, including the outcome."""
    for no_voters in (frozenset(), frozenset({3})):
        config = DifferentialConfig(
            protocol="two-phase-commit",
            n_sites=3,
            fault=FAILURE_FREE,
            no_voters=no_voters,
        )
        report = cross_validate(config)
        assert report.agreed, report.format_failures()
        assert report.sim_runs == 1


def test_disagreement_report_carries_both_traces():
    """A fabricated disagreement renders checker and sim evidence."""
    config = DifferentialConfig(
        protocol="naive-extended-three-phase-commit",
        n_sites=3,
        fault=PARTITION,
    )
    checker = check_model(config.protocol, config.modelcheck_spec())
    report = cross_validate(config, checker=checker)
    assert report.agreed
    # Force the formatting path through a synthetic disagreement.
    from repro.modelcheck.differential import Disagreement

    fake = Disagreement(
        config=config,
        scenario=config.scenario_specs()[0],
        sim_verdict="violated",
        checker_verdict="consistent",
        reason="synthetic",
        detail="  evidence line",
    )
    text = fake.format()
    assert "DISAGREEMENT" in text
    assert "naive-extended-three-phase-commit" in text
    assert "evidence line" in text


# ----------------------------------------------------------------------
# engine-contract identities for the MODELCHECK kind
# ----------------------------------------------------------------------
def _grid():
    return modelcheck_tasks(
        ("two-phase-commit", "naive-extended-three-phase-commit"),
        n_sites=3,
    )


def _spill(path, *, workers):
    sink = JsonlSink(path)
    SweepEngine(workers=workers).run_streaming(_grid(), sinks=[sink])
    return path.read_bytes()


def test_modelcheck_spills_are_worker_count_invariant(tmp_path):
    serial = _spill(tmp_path / "w1.jsonl", workers=1)
    parallel = _spill(tmp_path / "w4.jsonl", workers=4)
    assert serial == parallel
    assert serial.count(b"\n") == len(_grid())


def test_modelcheck_shard_merge_matches_single_machine(tmp_path):
    tasks = _grid()
    single = tmp_path / "single.jsonl"
    _spill(single, workers=1)
    spills = []
    for index in range(3):
        out = tmp_path / f"shard-{index}.jsonl"
        run_shard(tasks, index, 3, out, engine=SweepEngine())
        spills.append(out)
    merged = tmp_path / "merged.jsonl"
    result = merge_shards([str(s) for s in spills], jsonl=str(merged))
    assert merged.read_bytes() == single.read_bytes()
    assert result.records == len(tasks)
    assert "modelcheck" in result.kind_sinks
    rows = result.kind_sinks["modelcheck"].rows()
    assert {row["protocol"] for row in rows} == {
        "two-phase-commit",
        "naive-extended-three-phase-commit",
    }
