"""Streaming-execution guarantees: in-order delivery, bounded buffering,
worker-count-independent (byte-identical) aggregates, and cache reuse."""

import pytest

from repro.engine import (
    DecisionTimeHistogramSink,
    JsonlSink,
    ListSink,
    ScenarioGrid,
    StreamStats,
    SweepEngine,
    VerdictCounterSink,
    read_jsonl,
)
from repro.sim.latency import UniformLatency
from repro.sim.partition import PartitionSchedule


@pytest.fixture(scope="module")
def grid():
    """Two protocols x partitions x latencies x seeds = 64 scenarios."""
    return ScenarioGrid(
        protocols=("terminating-three-phase-commit", "two-phase-commit"),
        n_sites=3,
        partitions=(
            None,
            PartitionSchedule.simple(1.5, [1, 2], [3]),
            PartitionSchedule.simple(2.5, [1], [2, 3]),
            PartitionSchedule.transient(1.5, 4.0, [1, 3], [2]),
        ),
        latencies=(None, UniformLatency(0.25, 1.0)),
        seeds=(0, 1, 2, 3),
    )


class TestInOrderDelivery:
    def test_stream_yields_run_order(self, grid):
        streamed = list(SweepEngine(workers=1).stream(grid))
        assert streamed == SweepEngine(workers=1).run(grid).summaries

    def test_parallel_stream_yields_same_order(self, grid):
        streamed = list(SweepEngine(workers=4, chunk_size=3).stream(grid))
        assert streamed == SweepEngine(workers=1).run(grid).summaries

    def test_run_streaming_delivers_every_index_once(self, grid):
        seen = []
        sink = ListSink()
        original = sink.accept
        sink.accept = lambda i, s: (seen.append(i), original(i, s))
        SweepEngine(workers=4, chunk_size=5).run_streaming(grid, sinks=sink)
        assert seen == list(range(len(grid)))


class TestWorkerCountIndependentAggregates:
    def test_jsonl_spill_is_byte_identical_across_worker_counts(self, grid, tmp_path):
        spills = {}
        for workers in (1, 4):
            path = tmp_path / f"w{workers}.jsonl"
            SweepEngine(workers=workers, chunk_size=4).run_streaming(
                grid, sinks=JsonlSink(path)
            )
            spills[workers] = path.read_bytes()
        assert spills[1] == spills[4]
        assert spills[1].count(b"\n") == len(grid)

    def test_counter_and_histogram_aggregates_are_identical(self, grid):
        aggregates = {}
        for workers in (1, 4):
            counter = VerdictCounterSink()
            histogram = DecisionTimeHistogramSink()
            SweepEngine(workers=workers).run_streaming(
                grid, sinks=(counter, histogram)
            )
            aggregates[workers] = (counter.counts, histogram.bins, histogram.undecided)
        assert aggregates[1] == aggregates[4]


class TestBoundedBuffering:
    def test_serial_streaming_buffers_at_most_one_summary(self, grid):
        counter = VerdictCounterSink()
        stats = SweepEngine(workers=1).run_streaming(grid, sinks=counter)
        assert stats.total == len(grid)
        assert stats.max_buffered <= 1

    def test_parallel_streaming_never_buffers_the_whole_sweep(self, grid):
        # Chunked execution bounds the reorder buffer by in-flight chunk
        # results; with ordered chunk dispatch it stays well under the total.
        stats = SweepEngine(workers=2, chunk_size=4).run_streaming(
            grid, sinks=VerdictCounterSink()
        )
        assert stats.max_buffered < stats.total

    def test_stream_stats_throughput_and_elapsed(self, grid):
        stats = StreamStats()
        for _ in SweepEngine(workers=1).stream(grid, stats=stats):
            pass
        assert stats.total == len(grid)
        assert stats.elapsed > 0
        assert stats.throughput > 0


class TestStreamingCacheReuse:
    def test_warm_streaming_sweep_executes_nothing(self, grid, tmp_path):
        cold = SweepEngine(workers=1, cache=tmp_path).run_streaming(
            grid, sinks=VerdictCounterSink()
        )
        assert (cold.executed, cold.cache_hits) == (len(grid), 0)
        warm = SweepEngine(workers=1, cache=tmp_path).run_streaming(
            grid, sinks=VerdictCounterSink()
        )
        assert (warm.executed, warm.cache_hits) == (0, len(grid))
        assert warm.max_buffered == 0  # hits are re-read lazily, never buffered

    def test_warm_stream_matches_cold_aggregates(self, grid, tmp_path):
        cold_counter = VerdictCounterSink()
        SweepEngine(workers=1, cache=tmp_path).run_streaming(grid, sinks=cold_counter)
        warm_counter = VerdictCounterSink()
        SweepEngine(workers=4, cache=tmp_path).run_streaming(grid, sinks=warm_counter)
        assert cold_counter.counts == warm_counter.counts

    def test_streaming_backfills_missing_measures(self, tmp_path):
        from repro.protocols.runner import ScenarioSpec

        tasks = [("terminating-three-phase-commit", ScenarioSpec(n_sites=3))]
        engine = SweepEngine(workers=1, cache=tmp_path)
        engine.run_streaming(tasks, sinks=ListSink())
        sink = ListSink()
        stats = engine.run_streaming(tasks, sinks=sink, measures=("timeouts",))
        # The cached entry lacked the measure: re-executed, metrics merged in.
        assert stats.executed == 1
        assert "timeouts" in sink.summaries[0].metrics

    def test_sinks_are_closed_even_when_a_sink_raises(self, grid, tmp_path):
        path = tmp_path / "partial.jsonl"
        spill = JsonlSink(path)

        class Explode(ListSink):
            def accept(self, index, summary):
                if index == 3:
                    raise RuntimeError("boom")
                super().accept(index, summary)

        with pytest.raises(RuntimeError, match="boom"):
            SweepEngine(workers=1).run_streaming(grid, sinks=(spill, Explode()))
        # The spill was flushed on the error path: the summaries delivered
        # before the failure are durable and readable.
        assert spill._handle is None
        assert len(list(read_jsonl(path))) == 4

    def test_one_failing_close_does_not_skip_the_others(self, grid, tmp_path):
        path = tmp_path / "late.jsonl"
        spill = JsonlSink(path)

        class BadClose(ListSink):
            def close(self):
                raise RuntimeError("close boom")

        # BadClose comes first: its close() failure must still be raised,
        # but only after the JsonlSink behind it is flushed and closed.
        with pytest.raises(RuntimeError, match="close boom"):
            SweepEngine(workers=1).run_streaming(grid, sinks=(BadClose(), spill))
        assert spill._handle is None
        assert len(list(read_jsonl(path))) == len(grid)

    def test_close_failure_surfaces_even_inside_an_except_block(self, grid):
        class BadClose(ListSink):
            def close(self):
                raise RuntimeError("close boom")

        # A caller's unrelated in-flight exception must not swallow the
        # close() failure of an otherwise-successful streaming run.
        with pytest.raises(RuntimeError, match="close boom"):
            try:
                raise KeyError("unrelated")
            except KeyError:
                SweepEngine(workers=1).run_streaming(grid, sinks=BadClose())

    def test_warm_sweep_reads_each_cache_entry_exactly_once(self, grid, tmp_path):
        engine = SweepEngine(workers=1, cache=tmp_path)
        engine.run_streaming(grid, sinks=ListSink())
        warm_cache = engine.cache
        warm_cache.hits = warm_cache.misses = 0
        reads = 0
        original = type(warm_cache).get_bytes

        def counting(self, spec_hash, seed, *, record=True):
            nonlocal reads
            reads += 1
            return original(self, spec_hash, seed, record=record)

        type(warm_cache).get_bytes = counting
        try:
            engine.run_streaming(grid, sinks=ListSink())
        finally:
            type(warm_cache).get_bytes = original
        # One counted probe + one unrecorded read per task; never two parses.
        assert reads == len(grid)
        assert (warm_cache.hits, warm_cache.misses) == (len(grid), 0)

    def test_evicted_cache_entry_is_reexecuted_inline(self, grid, tmp_path):
        engine = SweepEngine(workers=1, cache=tmp_path)
        engine.run_streaming(grid, sinks=ListSink())
        reference = SweepEngine(workers=1).run(grid).summaries

        # Evict a file between the scan and delivery by deleting the whole
        # cache inside the first sink delivery.
        class Evict(ListSink):
            def accept(self, index, summary):
                if index == 0:
                    for path in tmp_path.glob("*/*.json"):
                        path.unlink()
                super().accept(index, summary)

        sink = Evict()
        stats = engine.run_streaming(grid, sinks=sink)
        assert sink.summaries == reference
        assert stats.executed + stats.cache_hits == len(grid)
