"""Spec-kind registry conformance: every kind honors the engine contracts.

The parametrized conformance classes run against *every* registered kind
(via its ``sample_task``), so a kind added later is automatically held to
the same bar: summary->JSON->summary round trips byte-identically (the
cache and shard-merge byte-identity guarantees depend on it), cache keys
are stable across processes and pickling, and resolution failures name the
offending kind.

``TestToyThirdKind`` is the acceptance proof of the registry refactor: a
third spec kind plugs into the engine, the result cache, the JSONL spill
format and shard/merge with a single ``register_spec_kind`` call -- no
edits to ``engine.py``, ``cache.py`` or ``sink.py``.
"""

import dataclasses
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Mapping

import pytest

from repro.core.canonical import canonical_json_bytes
from repro.engine import (
    JsonlSink,
    SpecKind,
    SweepEngine,
    SweepTask,
    UnknownSpecKindError,
    kind_by_name,
    kind_for_payload,
    kind_for_spec,
    kind_for_tag,
    merge_shards,
    read_jsonl,
    register_spec_kind,
    registered_kinds,
    run_shard,
    summary_from_json_dict,
    unregister_spec_kind,
)
from repro.engine.sink import SummarySink

KINDS = {kind.name: kind for kind in registered_kinds()}


@pytest.fixture(scope="module")
def sample_summaries(tmp_path_factory):
    """One executed summary per registered kind (engine path, cold cache)."""
    summaries = {}
    for name, kind in KINDS.items():
        task = kind.sample_task()
        cache_dir = tmp_path_factory.mktemp(f"cache-{name}")
        engine = SweepEngine(workers=1, cache=cache_dir)
        result = engine.run([task])
        summaries[name] = (task, result.summaries[0], engine.cache)
    return summaries


class TestBuiltinRegistrations:
    def test_both_builtin_kinds_register(self):
        assert {"scenario", "throughput"} <= set(KINDS)

    def test_kind_surface_is_complete(self):
        for kind in KINDS.values():
            assert kind.spec_type is not None
            assert kind.summary_type is not None
            assert callable(kind.execute)
            assert callable(kind.decode)
            assert callable(kind.make_sink)
            assert callable(kind.sample_task)

    def test_scenario_kind_owns_the_untagged_payload_format(self):
        assert KINDS["scenario"].json_tag is None
        assert kind_for_tag(None).name == "scenario"

    def test_default_sinks_expose_table_rows(self):
        for kind in KINDS.values():
            assert hasattr(kind.make_sink(), "rows")


@pytest.mark.parametrize("name", sorted(KINDS))
class TestKindConformance:
    """The per-kind contracts the cache / spill / shard formats rely on."""

    def test_sample_task_resolves_to_its_kind(self, name):
        kind = KINDS[name]
        task = kind.sample_task()
        assert kind_for_spec(task.spec) is kind

    def test_summary_json_round_trip_is_byte_identical(self, name, sample_summaries):
        _, summary, _ = sample_summaries[name]
        data = summary.to_json_bytes()
        clone = summary_from_json_dict(json.loads(data.decode("utf-8")))
        assert type(clone) is KINDS[name].summary_type
        assert clone.to_json_bytes() == data

    def test_payload_tag_selects_the_kind(self, name, sample_summaries):
        _, summary, _ = sample_summaries[name]
        assert kind_for_payload(summary.to_json_dict()).name == name

    def test_cache_entry_bytes_equal_summary_bytes(self, name, sample_summaries):
        task, summary, cache = sample_summaries[name]
        cached = cache.get_bytes(task.spec_hash, task.spec.seed, record=False)
        assert cached == summary.to_json_bytes()

    def test_cache_key_is_stable_across_pickling(self, name):
        task = KINDS[name].sample_task()
        clone = pickle.loads(pickle.dumps(task))
        assert clone.spec_hash == task.spec_hash

    def test_cache_key_is_stable_across_reconstruction(self, name):
        assert KINDS[name].sample_task().spec_hash == KINDS[name].sample_task().spec_hash

    def test_cache_key_covers_the_seed(self, name):
        task = KINDS[name].sample_task()
        reseeded = SweepTask(
            protocol=task.protocol,
            spec=dataclasses.replace(task.spec, seed=task.spec.seed + 1),
        )
        assert reseeded.spec_hash != task.spec_hash


class TestUnknownKindErrors:
    """Resolution failures must name the kind so they self-diagnose."""

    def test_unknown_name_names_the_kind(self):
        with pytest.raises(UnknownSpecKindError, match="mystery-kind"):
            kind_by_name("mystery-kind")

    def test_unknown_tag_names_the_tag(self):
        with pytest.raises(UnknownSpecKindError, match="mystery-tag"):
            kind_for_tag("mystery-tag")

    def test_unknown_payload_names_the_tag(self):
        with pytest.raises(UnknownSpecKindError, match="mystery-tag"):
            summary_from_json_dict({"kind": "mystery-tag"})

    def test_unknown_spec_type_names_the_type(self):
        with pytest.raises(UnknownSpecKindError, match="float"):
            kind_for_spec(3.14)

    def test_error_lists_the_registered_kinds(self):
        with pytest.raises(UnknownSpecKindError, match="scenario"):
            kind_by_name("nope")

    def test_unregistering_an_unknown_kind_errors(self):
        with pytest.raises(UnknownSpecKindError, match="mystery-kind"):
            unregister_spec_kind("mystery-kind")


class TestRegistrationCollisions:
    def test_duplicate_name_is_rejected(self):
        existing = KINDS["scenario"]
        with pytest.raises(ValueError, match="'scenario'"):
            register_spec_kind(
                dataclasses.replace(existing, spec_type=bytes, json_tag="dup-tag")
            )

    def test_duplicate_spec_type_is_rejected(self):
        existing = KINDS["scenario"]
        with pytest.raises(ValueError, match="ScenarioSpec"):
            register_spec_kind(
                dataclasses.replace(existing, name="dup-name", json_tag="dup-tag")
            )

    def test_duplicate_tag_is_rejected(self):
        existing = KINDS["throughput"]
        with pytest.raises(ValueError, match="'throughput'"):
            register_spec_kind(
                dataclasses.replace(existing, name="dup-name", spec_type=bytes)
            )


# ----------------------------------------------------------------------
# The toy third kind: the registry's acceptance criterion.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ToySpec:
    """A trivial spec: 'compute value * factor' (no simulator involved)."""

    value: int = 1
    factor: int = 2
    seed: int = 0


@dataclass
class ToySummary:
    """The toy kind's summary record, with the canonical-JSON contract."""

    protocol: str
    spec_hash: str
    seed: int
    product: int
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "kind": "toy",
            "protocol": self.protocol,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "product": self.product,
            "metrics": self.metrics,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ToySummary":
        return cls(
            protocol=payload["protocol"],
            spec_hash=payload["spec_hash"],
            seed=payload["seed"],
            product=payload["product"],
            metrics=dict(payload["metrics"]),
        )

    def to_json_bytes(self) -> bytes:
        return canonical_json_bytes(self.to_json_dict())


class ToySumSink(SummarySink):
    """The toy kind's default aggregate: a running product total."""

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def accept(self, index: int, summary) -> None:
        if isinstance(summary, ToySummary):
            self.total += summary.product
            self.count += 1

    def rows(self):
        return [{"records": self.count, "total": self.total}]


def _execute_toy(protocol, spec, *, spec_hash, measures=()):
    return ToySummary(
        protocol=protocol,
        spec_hash=spec_hash,
        seed=spec.seed,
        product=spec.value * spec.factor,
    )


@pytest.fixture
def toy_kind():
    """Register the toy kind for one test, then remove it."""
    kind = register_spec_kind(
        SpecKind(
            name="toy",
            spec_type=ToySpec,
            summary_type=ToySummary,
            execute=_execute_toy,
            decode=ToySummary.from_json_dict,
            json_tag="toy",
            make_sink=ToySumSink,
            sample_task=lambda: SweepTask(protocol="noop", spec=ToySpec()),
        )
    )
    try:
        yield kind
    finally:
        unregister_spec_kind("toy")


@pytest.fixture
def toy_tasks():
    return [
        SweepTask(protocol="noop", spec=ToySpec(value=value, seed=value))
        for value in range(1, 7)
    ]


class TestToyThirdKind:
    """One ``register_spec_kind`` call; zero engine / cache / sink edits."""

    def test_engine_runs_toy_tasks(self, toy_kind, toy_tasks):
        result = SweepEngine(workers=1).run(toy_tasks)
        assert [s.product for s in result.summaries] == [2, 4, 6, 8, 10, 12]

    def test_cache_round_trips_toy_summaries(self, toy_kind, toy_tasks, tmp_path):
        engine = SweepEngine(workers=1, cache=tmp_path / "cache")
        cold = engine.run(toy_tasks)
        warm = engine.run(toy_tasks)
        assert (warm.executed, warm.cache_hits) == (0, len(toy_tasks))
        assert [s.to_json_bytes() for s in warm.summaries] == [
            s.to_json_bytes() for s in cold.summaries
        ]

    def test_jsonl_spill_round_trips_toy_summaries(self, toy_kind, toy_tasks, tmp_path):
        path = tmp_path / "toy.jsonl"
        SweepEngine(workers=1).run_streaming(toy_tasks, sinks=JsonlSink(path))
        records = list(read_jsonl(path))
        assert all(isinstance(record, ToySummary) for record in records)
        assert [record.product for record in records] == [2, 4, 6, 8, 10, 12]

    def test_shard_merge_matches_single_machine_run(self, toy_kind, toy_tasks, tmp_path):
        single = tmp_path / "single.jsonl"
        SweepEngine(workers=1).run_streaming(toy_tasks, sinks=JsonlSink(single))
        spills = []
        for index in range(3):
            spill = tmp_path / f"shard-{index}.jsonl"
            run_shard(toy_tasks, index, 3, spill, engine=SweepEngine(workers=1))
            spills.append(spill)
        merged = tmp_path / "merged.jsonl"
        result = merge_shards(spills, jsonl=merged)
        assert merged.read_bytes() == single.read_bytes()
        assert result.kind_sinks["toy"].rows() == [{"records": 6, "total": 42}]

    def test_unregistering_restores_the_unknown_kind_error(self, toy_tasks):
        # Outside the fixture the toy kind must be gone again.
        with pytest.raises(UnknownSpecKindError, match="ToySpec"):
            kind_for_spec(toy_tasks[0].spec)
