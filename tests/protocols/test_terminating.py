"""Tests for the paper's termination protocol (Theorem 9) and its ablations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.protocols.three_phase_terminating import TerminatingThreePhaseCommit
from repro.sim.latency import PerLinkLatency
from repro.sim.partition import PartitionSchedule

from tests.protocols.conftest import simple_splits, sweep_partitions


class TestTheorem9Resilience:
    """Exhaustive sweeps over partition time x split x vote pattern."""

    def test_no_violation_and_no_blocking_three_sites(self):
        results = sweep_partitions(
            "terminating-three-phase-commit",
            n_sites=3,
            no_voter_options=(frozenset(), frozenset({2})),
        )
        assert all(not r.atomicity_violated for r in results)
        assert all(not r.blocked for r in results)

    def test_no_violation_and_no_blocking_four_sites(self):
        results = sweep_partitions(
            "terminating-three-phase-commit",
            n_sites=4,
            times=[0.5, 1.25, 2.25, 2.75, 3.25, 3.75, 4.25, 5.5],
        )
        assert all(not r.atomicity_violated for r in results)
        assert all(not r.blocked for r in results)

    def test_no_locks_left_after_any_swept_scenario(self):
        results = sweep_partitions("terminating-three-phase-commit", n_sites=3)
        for result in results:
            assert not any(result.locks_held_at_end.values()), result.summary()

    def test_committed_runs_install_the_value_everywhere(self):
        results = sweep_partitions("terminating-three-phase-commit", n_sites=3)
        for result in results:
            if result.all_committed:
                assert result.stores_agree

    @settings(deadline=None, max_examples=25)
    @given(
        at=st.floats(min_value=0.1, max_value=8.0),
        g2_size=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_random_partitions_never_break_atomicity(self, at, g2_size, seed):
        n_sites = 4
        g2 = tuple(range(n_sites - g2_size + 1, n_sites + 1))
        g1 = tuple(s for s in range(1, n_sites + 1) if s not in g2)
        partition = PartitionSchedule.simple(at, g1, g2)
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=n_sites, partition=partition, seed=seed),
        )
        assert not result.atomicity_violated
        assert not result.blocked


class TestTerminationDecisions:
    def test_partition_before_any_prepare_aborts_everyone(self):
        """Idea 2 of Section 5.2: master times out in w -> abort G1; G2 aborts too."""
        partition = PartitionSchedule.simple(1.25, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition),
        )
        assert result.all_aborted

    def test_partition_cutting_prepare_aborts_everyone(self):
        """No prepare crossed the boundary: N - UD = PB, master aborts (Lemma 4)."""
        partition = PartitionSchedule.simple(2.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition),
        )
        assert result.all_aborted
        windows = result.trace.filter("probe-window-closed")
        assert len(windows) == 1
        assert windows[0].get("outcome") == "abort"

    def test_partition_after_prepare_delivery_commits_everyone(self):
        """A prepare crossed the boundary: the G2 slave leads its partition to commit."""
        partition = PartitionSchedule.simple(3.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition),
        )
        assert result.all_committed

    def test_ud_ack_makes_g2_slave_the_committer(self):
        """Section 5.2 idea 6(1): a returned ack tells a prepared slave it is in G2."""
        partition = PartitionSchedule.simple(3.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition),
        )
        decisions = result.trace.filter("decision", site=3)
        assert decisions[0].get("reason") == "own ack returned undeliverable"

    def test_mixed_partition_with_prepare_crossing_commits_everyone(self):
        """Some prepares crossed B, some did not: the probe sets differ, G1
        commits, and the prepared G2 slave relays the commit to its peers."""
        latency = PerLinkLatency(1.0, {(1, 4): 1.5})
        partition = PartitionSchedule.simple(3.7, [1, 2], [3, 4])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=4, partition=partition, latency=latency),
        )
        assert result.all_committed, result.summary()
        windows = result.trace.filter("probe-window-closed")
        assert windows and windows[0].get("outcome") == "commit"

    def test_relayed_commit_reaches_slave_still_in_w(self):
        """The Fig. 8 w -> c transition in action."""
        latency = PerLinkLatency(1.0, {(1, 4): 1.5})
        partition = PartitionSchedule.simple(3.7, [1, 2], [3, 4])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=4, partition=partition, latency=latency),
        )
        transitions = result.trace.filter("transition", site=4)
        assert any("Fig. 8" in record.get("reason", "") for record in transitions)

    def test_master_timeout_in_p_commits_when_no_prepare_bounced(self):
        """Idea 3 of Section 5.2: all prepares delivered, acks cut -> commit."""
        partition = PartitionSchedule.simple(3.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition),
        )
        assert result.decisions[1] == "commit"

    def test_slave_whose_yes_bounced_aborts_everyone(self):
        """w_i (2): an undeliverable yes vote aborts the whole transaction."""
        partition = PartitionSchedule.simple(1.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition),
        )
        assert result.all_aborted
        decisions = result.trace.filter("decision", site=3)
        assert decisions[0].get("reason") == "own yes vote returned undeliverable"


class TestTransientPartitioning:
    def test_case_3222_blocks_without_the_transient_rule(self):
        """Section 6: the only unbounded case -- commit lost, probes pass B."""
        partition = PartitionSchedule.transient(4.25, 5.25, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit-no-transient"),
            ScenarioSpec(n_sites=3, partition=partition, horizon=80.0),
        )
        assert result.blocked
        assert 3 in result.blocked_sites

    def test_case_3222_commits_with_the_transient_rule(self):
        partition = PartitionSchedule.transient(4.25, 5.25, [1, 2], [3])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition, horizon=80.0),
        )
        assert result.all_committed
        # the isolated slave commits 5T after it timed out in p (at 6T)
        assert result.decision_times[3] == pytest.approx(11.0)

    def test_transient_sweep_is_consistent(self):
        results = sweep_partitions(
            "terminating-three-phase-commit",
            n_sites=3,
            heal_after=2.0,
            horizon=80.0,
        )
        assert all(not r.atomicity_violated for r in results)
        assert all(not r.blocked for r in results)

    def test_answering_late_probes_is_an_alternative_fix(self):
        """Ablation: a master that answers late probes also terminates 3.2.2.2."""
        protocol = TerminatingThreePhaseCommit(
            transient_rule=False, answer_late_probes=True, name="late-probe-master"
        )
        partition = PartitionSchedule.transient(4.25, 5.25, [1, 2], [3])
        result = run_scenario(
            protocol, ScenarioSpec(n_sites=3, partition=partition, horizon=80.0)
        )
        assert result.all_committed


class TestAblations:
    def test_dropping_the_w_to_c_transition_breaks_the_protocol(self):
        """Section 5.3's "fly in the ointment": without the Fig. 8 transition a
        slave in w misses the only commit it will ever receive and aborts."""
        protocol = TerminatingThreePhaseCommit(
            relay_commit_in_w=False, name="no-w-to-c"
        )
        latency = PerLinkLatency(1.0, {(1, 4): 1.5})
        partition = PartitionSchedule.simple(3.7, [1, 2], [3, 4])
        result = run_scenario(
            protocol, ScenarioSpec(n_sites=4, partition=partition, latency=latency)
        )
        assert result.atomicity_violated
        assert 4 in result.aborted_sites

    def test_with_the_transition_the_same_scenario_is_consistent(self):
        latency = PerLinkLatency(1.0, {(1, 4): 1.5})
        partition = PartitionSchedule.simple(3.7, [1, 2], [3, 4])
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=4, partition=partition, latency=latency),
        )
        assert not result.atomicity_violated


class TestTheorem10Quorum:
    def test_terminating_quorum_uses_pre_commit_as_promotion(self):
        protocol = create_protocol("terminating-quorum-commit")
        assert protocol.promotion_kind == "pre-commit"

    def test_terminating_quorum_survives_partition_sweep(self):
        results = sweep_partitions("terminating-quorum-commit", n_sites=3)
        assert all(not r.atomicity_violated for r in results)
        assert all(not r.blocked for r in results)

    def test_plain_quorum_blocks_under_partition(self):
        partition = PartitionSchedule.simple(2.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("quorum-commit"), ScenarioSpec(n_sites=3, partition=partition)
        )
        assert result.blocked


class TestConcurrentFailuresAssumption:
    """Section 7: with a site failure during the partition, atomicity can break --
    this is why assumptions 3-4 are needed."""

    def test_only_prepared_g2_slave_crashing_breaks_atomicity(self):
        """Scenario (1) of Section 7: the only G2 slave holding a prepare dies
        before it can lead G2 to commit, so the rest of G2 aborts while G1 commits."""
        from repro.sim.failures import CrashSchedule
        from repro.sim.latency import PerLinkLatency

        latency = PerLinkLatency(1.0, {(1, 4): 1.5})
        partition = PartitionSchedule.simple(3.7, [1, 2], [3, 4])
        crashes = CrashSchedule.single(3, at=4.0)
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=4, partition=partition, crashes=crashes, latency=latency),
        )
        committed = set(result.committed_sites)
        assert {1, 2} <= committed
        assert 4 in result.aborted_sites or 4 in result.blocked_sites
