"""Tests for the baseline protocols under partitions.

These pin the paper's negative results:

* plain 2PC and plain 3PC block under partitions (and under master silence);
* the extended 2PC (Fig. 2) is resilient for two sites but violates
  atomicity for three or more (Section 3, observation 1);
* 3PC with Rule (a)/(b) only violates atomicity (Section 3, observation 2,
  which is the premise of Lemma 3).
"""

import pytest

from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.failures import CrashSchedule
from repro.sim.partition import PartitionSchedule

from tests.protocols.conftest import sweep_partitions


class TestPlainTwoPhaseBlocks:
    def test_blocks_when_partition_separates_a_slave_in_wait(self):
        partition = PartitionSchedule.simple(1.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("two-phase-commit"), ScenarioSpec(n_sites=3, partition=partition)
        )
        assert 3 in result.blocked_sites

    def test_blocked_slave_keeps_its_locks(self):
        """The availability cost the paper's introduction describes."""
        partition = PartitionSchedule.simple(1.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("two-phase-commit"), ScenarioSpec(n_sites=3, partition=partition)
        )
        assert result.locks_held_at_end[3]

    def test_blocks_when_master_crashes_after_votes(self):
        crashes = CrashSchedule.single(1, at=1.5)
        result = run_scenario(
            create_protocol("two-phase-commit"), ScenarioSpec(n_sites=3, crashes=crashes)
        )
        assert set(result.blocked_sites) >= {2, 3}

    def test_never_violates_atomicity_even_though_it_blocks(self):
        results = sweep_partitions("two-phase-commit", n_sites=3)
        assert all(not r.atomicity_violated for r in results)
        assert any(r.blocked for r in results)


class TestPlainThreePhaseBlocks:
    def test_blocks_under_partition_without_termination_protocol(self):
        partition = PartitionSchedule.simple(2.5, [1, 2], [3])
        result = run_scenario(
            create_protocol("three-phase-commit"), ScenarioSpec(n_sites=3, partition=partition)
        )
        assert result.blocked

    def test_never_violates_atomicity(self):
        results = sweep_partitions("three-phase-commit", n_sites=3)
        assert all(not r.atomicity_violated for r in results)

    def test_blocking_rate_is_substantial(self):
        results = sweep_partitions("three-phase-commit", n_sites=3)
        blocked = sum(1 for r in results if r.blocked)
        assert blocked > len(results) / 4


class TestExtendedTwoPhase:
    def test_resilient_for_two_sites(self):
        """Skeen & Stonebraker's result: Rules (a)/(b) suffice for two sites."""
        results = sweep_partitions(
            "extended-two-phase-commit",
            n_sites=2,
            no_voter_options=(frozenset(), frozenset({2})),
        )
        assert all(not r.atomicity_violated for r in results)
        assert all(not r.blocked for r in results)

    def test_not_resilient_for_three_sites(self):
        """Section 3, observation 1: multisite partitioning breaks it."""
        results = sweep_partitions(
            "extended-two-phase-commit",
            n_sites=3,
            no_voter_options=(frozenset(), frozenset({3})),
        )
        assert any(r.atomicity_violated for r in results)

    def test_specific_violation_scenario(self):
        """One slave votes no while the other is separated mid-vote."""
        partition = PartitionSchedule.simple(2.25, [1, 3], [2])
        result = run_scenario(
            create_protocol("extended-two-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition, no_voters=frozenset({3})),
        )
        assert result.atomicity_violated

    def test_nonblocking_in_every_swept_scenario(self):
        results = sweep_partitions("extended-two-phase-commit", n_sites=3)
        assert all(not r.blocked for r in results)


class TestNaiveExtendedThreePhase:
    def test_not_resilient_for_three_sites(self):
        """Section 3, observation 2: Rule (a)/(b) timeouts are not enough."""
        results = sweep_partitions("naive-extended-three-phase-commit", n_sites=3)
        assert any(r.atomicity_violated for r in results)

    def test_prepared_slave_commits_while_waiting_slave_aborts(self):
        """The exact failure mode quoted in the paper: the slave that received
        a prepare times out and commits, the one that did not aborts."""
        partition = PartitionSchedule.simple(2.25, [1, 2], [3])
        result = run_scenario(
            create_protocol("naive-extended-three-phase-commit"),
            ScenarioSpec(n_sites=3, partition=partition),
        )
        assert result.atomicity_violated
        assert 2 in result.committed_sites
        assert 3 in result.aborted_sites

    def test_violations_persist_at_larger_scales(self):
        results = sweep_partitions(
            "naive-extended-three-phase-commit",
            n_sites=4,
            times=[1.5, 2.25, 2.5, 3.25],
        )
        assert any(r.atomicity_violated for r in results)

    def test_resilient_for_two_sites(self):
        """With a single slave the rules still work (the defect is multisite)."""
        results = sweep_partitions(
            "naive-extended-three-phase-commit",
            n_sites=2,
            no_voter_options=(frozenset(), frozenset({2})),
        )
        assert all(not r.atomicity_violated for r in results)


class TestPessimisticModelImpossibility:
    """With lost (rather than returned) messages no protocol is resilient --
    the theorem the paper quotes from Skeen & Stonebraker.  We spot-check that
    even the terminating protocol degrades (blocks or violates) in that model."""

    def test_terminating_protocol_not_resilient_when_messages_are_lost(self):
        outcomes = []
        for at in [0.5, 1.5, 2.25, 2.5, 3.25, 4.5]:
            partition = PartitionSchedule.simple(at, [1, 2], [3])
            result = run_scenario(
                create_protocol("terminating-three-phase-commit"),
                ScenarioSpec(n_sites=3, partition=partition, model="pessimistic"),
            )
            outcomes.append(result)
        assert any(r.atomicity_violated or r.blocked for r in outcomes)
