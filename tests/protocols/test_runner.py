"""Tests for the scenario runner and failure-free protocol behaviour."""

import pytest

from repro.protocols.registry import available_protocols, create_protocol
from repro.protocols.runner import ScenarioSpec, run_many, run_scenario
from repro.sim.latency import ConstantLatency
from repro.sim.partition import PartitionSchedule

ALL_PROTOCOLS = available_protocols()


class TestRegistry:
    def test_all_expected_protocols_registered(self):
        names = available_protocols()
        assert "two-phase-commit" in names
        assert "extended-two-phase-commit" in names
        assert "three-phase-commit" in names
        assert "naive-extended-three-phase-commit" in names
        assert "terminating-three-phase-commit" in names
        assert "terminating-quorum-commit" in names

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            create_protocol("paxos")

    def test_create_returns_fresh_instances(self):
        assert create_protocol("two-phase-commit") is not create_protocol("two-phase-commit")


class TestFailureFreeRuns:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_every_protocol_commits_without_failures(self, name):
        result = run_scenario(create_protocol(name), ScenarioSpec(n_sites=3))
        assert result.all_committed, result.summary()
        assert not result.blocked
        assert not result.atomicity_violated

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_every_protocol_aborts_with_a_no_voter(self, name):
        result = run_scenario(
            create_protocol(name), ScenarioSpec(n_sites=3, no_voters=frozenset({3}))
        )
        assert result.all_aborted, result.summary()
        assert not result.atomicity_violated

    @pytest.mark.parametrize("n_sites", [2, 3, 5, 8])
    def test_terminating_protocol_scales_with_sites(self, n_sites):
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"), ScenarioSpec(n_sites=n_sites)
        )
        assert result.all_committed

    def test_committed_value_installed_at_every_site(self):
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(n_sites=3, write_key="stock", write_value=42),
        )
        assert all(value == 42 for value in result.values_at_end.values())
        assert result.stores_agree

    def test_aborted_transaction_leaves_initial_values(self):
        result = run_scenario(
            create_protocol("terminating-three-phase-commit"),
            ScenarioSpec(
                n_sites=3,
                no_voters=frozenset({2}),
                initial_data={"balance": 7},
                write_value=999,
            ),
        )
        assert all(value == 7 for value in result.values_at_end.values())

    def test_two_phase_commit_latency_is_three_t(self):
        result = run_scenario(create_protocol("two-phase-commit"), ScenarioSpec(n_sites=3))
        assert result.max_decision_latency() == pytest.approx(3.0)

    def test_three_phase_commit_latency_is_five_t(self):
        result = run_scenario(create_protocol("three-phase-commit"), ScenarioSpec(n_sites=3))
        assert result.max_decision_latency() == pytest.approx(5.0)

    def test_latency_scales_with_t(self):
        result = run_scenario(
            create_protocol("three-phase-commit"),
            ScenarioSpec(n_sites=3, latency=ConstantLatency(2.0)),
        )
        assert result.max_decision_latency() == pytest.approx(10.0)

    def test_three_phase_sends_more_messages_than_two_phase(self):
        two = run_scenario(create_protocol("two-phase-commit"), ScenarioSpec(n_sites=4))
        three = run_scenario(create_protocol("three-phase-commit"), ScenarioSpec(n_sites=4))
        assert three.messages_sent > two.messages_sent

    def test_no_locks_held_after_termination(self):
        result = run_scenario(create_protocol("terminating-three-phase-commit"), ScenarioSpec())
        assert not any(result.locks_held_at_end.values())


class TestScenarioSpec:
    def test_default_latency_is_unit(self):
        assert ScenarioSpec().effective_latency().upper_bound == 1.0

    def test_default_horizon_is_forty_t(self):
        assert ScenarioSpec().effective_horizon() == 40.0
        assert ScenarioSpec(latency=ConstantLatency(2.0)).effective_horizon() == 80.0

    def test_explicit_horizon_respected(self):
        assert ScenarioSpec(horizon=12.5).effective_horizon() == 12.5

    def test_run_scenario_keyword_overrides(self):
        result = run_scenario(create_protocol("two-phase-commit"), n_sites=4)
        assert len(result.participants) == 4

    def test_run_many_runs_each_spec(self):
        specs = [ScenarioSpec(n_sites=2), ScenarioSpec(n_sites=3)]
        results = run_many(lambda: create_protocol("two-phase-commit"), specs)
        assert [len(r.participants) for r in results] == [2, 3]


class TestResultProperties:
    def test_summary_mentions_protocol_and_verdict(self):
        result = run_scenario(create_protocol("two-phase-commit"), ScenarioSpec(n_sites=2))
        assert "two-phase-commit" in result.summary()
        assert "consistent" in result.summary()

    def test_blocked_summary(self):
        partition = PartitionSchedule.simple(0.5, [1], [2, 3])
        result = run_scenario(
            create_protocol("two-phase-commit"), ScenarioSpec(n_sites=3, partition=partition)
        )
        assert result.blocked
        assert "blocked" in result.summary()

    def test_decision_latency_accessors(self):
        result = run_scenario(create_protocol("three-phase-commit"), ScenarioSpec(n_sites=3))
        assert result.decision_latency(1) == pytest.approx(4.0)
        assert result.decision_latency(2) == pytest.approx(5.0)
        assert result.max_decision_latency() == pytest.approx(5.0)

    def test_votes_recorded(self):
        result = run_scenario(
            create_protocol("three-phase-commit"),
            ScenarioSpec(n_sites=3, no_voters=frozenset({2})),
        )
        assert result.votes[2] == "no"
        assert result.votes[3] in ("yes", None)

    def test_trace_available_for_analysis(self):
        result = run_scenario(create_protocol("terminating-three-phase-commit"), ScenarioSpec())
        assert result.trace.count("decision") == 3
        assert result.trace.count("send") > 0
