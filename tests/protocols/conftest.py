"""Shared helpers for the protocol test suite."""

import itertools

import pytest

from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.partition import PartitionSchedule


def simple_splits(n_sites):
    """Every way to split sites 1..n into (G1 containing the master, G2)."""
    slaves = list(range(2, n_sites + 1))
    splits = []
    for k in range(1, len(slaves) + 1):
        for combo in itertools.combinations(slaves, k):
            g2 = set(combo)
            g1 = set(range(1, n_sites + 1)) - g2
            splits.append((tuple(sorted(g1)), tuple(sorted(g2))))
    return splits


def sweep_partitions(
    protocol_name,
    *,
    n_sites=3,
    times=None,
    no_voter_options=(frozenset(),),
    heal_after=None,
    horizon=None,
):
    """Run a protocol across a grid of partition times, splits and vote patterns."""
    times = times if times is not None else [0.5 * i for i in range(1, 17)]
    results = []
    for at in times:
        for g1, g2 in simple_splits(n_sites):
            for no_voters in no_voter_options:
                if heal_after is None:
                    partition = PartitionSchedule.simple(at, g1, g2)
                else:
                    partition = PartitionSchedule.transient(at, at + heal_after, g1, g2)
                result = run_scenario(
                    create_protocol(protocol_name),
                    ScenarioSpec(
                        n_sites=n_sites,
                        partition=partition,
                        no_voters=no_voters,
                        horizon=horizon,
                    ),
                )
                results.append(result)
    return results


@pytest.fixture
def run_simple():
    """Run a protocol by name in a simple configurable scenario."""

    def _run(name, **kwargs):
        return run_scenario(create_protocol(name), ScenarioSpec(**kwargs))

    return _run
