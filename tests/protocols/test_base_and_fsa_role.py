"""Unit tests for the role plumbing (base class and generic FSA roles)."""

import pytest

from repro.core import messages as m
from repro.core.fsa import MASTER_ROLE, SLAVE_ROLE
from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite
from repro.db.transactions import Transaction
from repro.protocols.base import Decision, ProtocolContext, ProtocolMessage, RoleBase
from repro.protocols.extended_two_phase import ExtendedTwoPhaseCommit
from repro.protocols.fsa_role import FSAProtocolDefinition
from repro.protocols.two_phase import TwoPhaseCommit
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.cluster import Cluster


def make_context(site=1, n_sites=3):
    cluster = Cluster(n_sites)
    transaction = Transaction.simple_update(1, cluster.site_ids(), "k", 1, transaction_id="t-ctx")
    ctx = ProtocolContext(
        node=cluster.node(site),
        db=DatabaseSite(site),
        transaction=transaction,
        participants=tuple(cluster.site_ids()),
        master=1,
        timers=TerminationTimers(1.0),
    )
    return cluster, ctx


class TestProtocolContext:
    def test_derived_views(self):
        _, ctx = make_context(site=2, n_sites=4)
        assert ctx.site == 2
        assert ctx.slaves == (2, 3, 4)
        assert ctx.others == (1, 3, 4)
        assert not ctx.is_master
        assert ctx.max_delay == 1.0

    def test_master_context(self):
        _, ctx = make_context(site=1)
        assert ctx.is_master
        assert 1 not in ctx.others


class TestRoleBase:
    def test_decide_is_idempotent_and_applies_to_db(self):
        cluster, ctx = make_context(site=1)
        role = RoleBase(ctx, initial_state="q")
        role.cast_vote()
        role.decide(Decision.COMMIT, reason="test")
        role.decide(Decision.COMMIT, reason="again")
        assert role.decision is Decision.COMMIT
        assert ctx.db.decision("t-ctx") == "commit"
        assert role.conflicting_decisions == 0

    def test_conflicting_decision_recorded_not_applied(self):
        cluster, ctx = make_context(site=1)
        role = RoleBase(ctx, initial_state="q")
        role.cast_vote()
        role.decide(Decision.ABORT)
        role.decide(Decision.COMMIT)
        assert role.decision is Decision.ABORT
        assert role.conflicting_decisions == 1
        assert cluster.trace.count("conflicting-decision") == 1

    def test_forced_no_vote(self):
        cluster, ctx = make_context(site=2)
        ctx.no_voters = frozenset({2})
        role = RoleBase(ctx, initial_state="q")
        assert role.cast_vote() == "no"
        assert role.vote == "no"

    def test_unwrap_filters_other_transactions(self):
        _, ctx = make_context(site=1)
        role = RoleBase(ctx, initial_state="q")
        own = ProtocolMessage(kind=m.YES, transaction_id="t-ctx", sender=2)
        other = ProtocolMessage(kind=m.YES, transaction_id="another", sender=2)
        assert role.unwrap(own)[0] is own
        assert role.unwrap(other)[0] is None
        assert role.unwrap("not-a-protocol-message")[0] is None

    def test_broadcast_decision_targets_other_participants(self):
        cluster, ctx = make_context(site=1)
        role = RoleBase(ctx, initial_state="q")
        role.broadcast_decision(Decision.ABORT)
        sends = cluster.trace.filter("send", site=1)
        assert {record.get("destination") for record in sends} == {2, 3}


class TestFSAProtocolDefinition:
    def test_spec_is_cached(self):
        definition = TwoPhaseCommit()
        assert definition.spec is definition.spec

    def test_augmentation_cached_per_size(self):
        definition = ExtendedTwoPhaseCommit()
        first = definition._augmentation_for(3)
        second = definition._augmentation_for(3)
        assert first is second
        assert definition._augmentation_for(2) is not first

    def test_unaugmented_definition_returns_none(self):
        assert TwoPhaseCommit()._augmentation_for(3) is None

    def test_roles_follow_protocol_spec_states(self):
        definition = TwoPhaseCommit()
        _, master_ctx = make_context(site=1)
        _, slave_ctx = make_context(site=2)
        master = definition.coordinator(master_ctx)
        slave = definition.participant(slave_ctx)
        assert master.role == MASTER_ROLE
        assert slave.role == SLAVE_ROLE
        assert master.state == m.INITIAL
        assert slave.state == m.INITIAL

    def test_four_phase_protocol_runs_failure_free(self):
        """The generic FSA role executes the extra buffering round too."""
        from repro.core.catalog import four_phase_commit

        definition = FSAProtocolDefinition("four-phase-commit", four_phase_commit)
        result = run_scenario(definition, ScenarioSpec(n_sites=3))
        assert result.all_committed
        assert result.max_decision_latency() == pytest.approx(7.0)


class TestMessageObjects:
    def test_protocol_message_str(self):
        message = ProtocolMessage(kind=m.PROBE, transaction_id="t9", sender=4)
        assert "probe" in str(message)
        assert "t9" in str(message)

    def test_xact_payload_carries_transaction(self):
        result = run_scenario(create_protocol("two-phase-commit"), ScenarioSpec(n_sites=2))
        sends = result.trace.filter("send", predicate=lambda r: r.get("payload") == m.XACT)
        assert sends
