"""Randomized schedule fuzzing of the concurrent-transaction subsystem.

A seeded generator drives ~200 random workloads -- mixed protocols,
deadlock/victim policies, retry budgets, arrival processes, hot-spot skew,
partitions, crash/recovery schedules and unified fault plans (lossy,
duplicating and reordering links, send/receive omission, equivocating and
arbitrary Byzantine participants, with and without the retransmission
layer) -- and asserts the lock-manager and scheduler invariants on every
schedule:

* **FIFO no-barging / upgrade priority** -- checked at every promoted
  grant: a granted request that overtakes an older pending stranger on its
  key must be a shared->exclusive upgrade;
* **queue shape** -- at every probe instant: pending upgrades sit ahead of
  ordinary requests, and the ordinary suffix is in arrival order;
* **no lock held (or queued) by an aborted transaction**;
* **waits-for acyclicity** -- whenever cycle detection is on, no
  all-waiting cycle survives between events (victim aborts must actually
  break every deadlock they are invoked on);
* **conservation at the horizon** -- every admitted logical transaction is
  exactly one of committed / exhausted (aborted) / in flight, committed
  splits into first-try + after-retry, and aborts split exactly by cause.

Probes run as simulator events (between scheduler events), so transient
mid-event states never trip them; every failure message embeds the
workload's case seed for byte-exact reproduction.
"""

import random
from dataclasses import replace

import pytest

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite, SiteState
from repro.protocols.registry import create_protocol
from repro.sim.cluster import Cluster
from repro.sim.failures import (
    ARBITRARY,
    EQUIVOCATE,
    RECEIVE_OMISSION,
    SEND_OMISSION,
    ByzantineSpec,
    CrashSchedule,
    FaultPlan,
    LinkFault,
    OmissionFault,
    RetransmitPolicy,
)
from repro.sim.partition import PartitionSchedule
from repro.txn import (
    DeadlockPolicy,
    RetryPolicy,
    ThroughputSpec,
    TransactionScheduler,
    TransactionVerdict,
    TxnPhase,
    VictimPolicy,
    find_cycle,
    merge_waits_for,
)
from repro.workloads.transactions import generate_transactions

MASTER_SEED = 20260727
N_WORKLOADS = 200
BATCHES = 20

PROTOCOLS = (
    "two-phase-commit",
    "three-phase-commit",
    "quorum-commit",
    "terminating-three-phase-commit",
    "terminating-quorum-commit",
)


def random_case(case_seed: int):
    """One random (protocol, spec) pair, a pure function of ``case_seed``."""
    rng = random.Random(f"fuzz-case:{case_seed}")
    n_sites = rng.randint(2, 4)

    partition = None
    if rng.random() < 0.5 and n_sites >= 2:
        onset = rng.uniform(1.0, 12.0)
        cut = rng.randint(1, n_sites - 1)
        g1 = list(range(1, cut + 1))
        g2 = list(range(cut + 1, n_sites + 1))
        if rng.random() < 0.7:
            partition = PartitionSchedule.transient(
                onset, onset + rng.uniform(2.0, 8.0), g1, g2
            )
        else:
            partition = PartitionSchedule.simple(onset, g1, g2)

    crashes = None
    if rng.random() < 0.4:
        at = rng.uniform(2.0, 16.0)
        recover_at = at + rng.uniform(3.0, 8.0) if rng.random() < 0.7 else None
        crashes = CrashSchedule.single(rng.randint(1, n_sites), at, recover_at)

    spec = ThroughputSpec(
        n_sites=n_sites,
        n_transactions=rng.randint(6, 14),
        tx_rate=rng.choice([1.0, 2.0, 4.0]),
        arrival=rng.choice(["uniform", "poisson"]),
        read_fraction=rng.choice([0.0, 0.2, 0.5]),
        operations_per_site=rng.randint(1, 2),
        n_keys=rng.randint(2, 5),
        hotspot=rng.choice([0.0, 0.8, 1.5]),
        op_delay=rng.choice([0.0, 0.05, 0.25]),
        partition=partition,
        crashes=crashes,
        deadlock=DeadlockPolicy(
            detect_cycles=rng.random() < 0.8,
            wait_timeout=rng.choice([None, 3.0, 6.0]),
            victim=rng.choice(list(VictimPolicy)),
        ),
        retry=RetryPolicy(
            max_attempts=rng.randint(1, 3),
            backoff=rng.choice([0.5, 1.5]),
            jitter=rng.choice([0.0, 0.5]),
        ),
        seed=rng.randrange(1_000_000),
    )

    # Fault plans draw last so the pre-existing axes keep their exact
    # realizations for a given case seed; replace() re-runs validation and
    # the direct->network lock-transport auto-upgrade.
    if rng.random() < 0.45:
        plan_seed = rng.randrange(1_000_000)
        fault_class = rng.choice(
            ["loss", "duplicate", "reorder", "omission", "byzantine"]
        )
        if fault_class == "loss":
            plan = FaultPlan(
                links=(LinkFault(loss=rng.choice([0.15, 0.3])),), seed=plan_seed
            )
        elif fault_class == "duplicate":
            plan = FaultPlan(links=(LinkFault(duplicate=0.5),), seed=plan_seed)
        elif fault_class == "reorder":
            plan = FaultPlan(
                links=(LinkFault(reorder=0.5, reorder_window=1.0),),
                seed=plan_seed,
            )
        elif fault_class == "omission":
            plan = FaultPlan(
                omissions=(
                    OmissionFault(
                        site=rng.randint(1, n_sites),
                        kind=rng.choice([SEND_OMISSION, RECEIVE_OMISSION]),
                        probability=0.4,
                    ),
                ),
                seed=plan_seed,
            )
        else:
            plan = FaultPlan(
                byzantine=(
                    ByzantineSpec(
                        site=rng.randint(1, n_sites),
                        mode=rng.choice([EQUIVOCATE, ARBITRARY]),
                    ),
                ),
                seed=plan_seed,
            )
        if rng.random() < 0.5:
            plan = replace(
                plan,
                retransmit=RetransmitPolicy(
                    max_attempts=rng.choice([3, 6]), interval=0.8
                ),
            )
        spec = replace(spec, faults=plan)

    return rng.choice(PROTOCOLS), spec


class InvariantChecker:
    """Wraps a scheduler's lock tables and asserts invariants as it runs."""

    def __init__(self, context: str, scheduler, db_sites) -> None:
        self.context = context
        self.scheduler = scheduler
        self.db_sites = db_sites

    def fail(self, message: str) -> None:
        pytest.fail(f"[{self.context}] {message}")

    # ------------------------------------------------------------------
    # grant-time invariant: FIFO no-barging, upgrades excepted
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Interpose on every site's grant callback (crash-surviving)."""
        for site in sorted(self.db_sites):
            db = self.db_sites[site]
            original = db.locks.on_grant

            def checked(request, _site=site, _db=db, _original=original):
                self.check_grant(_site, _db, request)
                _original(request)

            db.locks.on_grant = checked

    def check_grant(self, site, db, request) -> None:
        overtaken = [
            pending
            for pending in db.locks.queued(request.key)
            if pending.owner != request.owner
            and pending.enqueued_at < request.enqueued_at
        ]
        if overtaken and not request.upgrade:
            self.fail(
                f"no-barging violated at site {site}: grant of "
                f"{request.owner}/{request.key} (t={request.enqueued_at}) "
                f"overtook pending {[(p.owner, p.enqueued_at) for p in overtaken]}"
            )

    # ------------------------------------------------------------------
    # probe-time invariants (run as simulator events, between events)
    # ------------------------------------------------------------------
    def probe(self) -> None:
        self.check_queue_shape()
        self.check_no_aborted_holders()
        self.check_acyclic()

    def check_queue_shape(self) -> None:
        for site in sorted(self.db_sites):
            db = self.db_sites[site]
            if db.state is SiteState.CRASHED:
                continue
            for key in db.locks.queued_keys():
                pending = db.locks.queued(key)
                saw_ordinary = False
                previous_at = None
                for request in pending:
                    if request.upgrade and saw_ordinary:
                        self.fail(
                            f"upgrade of {request.owner}/{key} queued behind "
                            f"ordinary requests at site {site}"
                        )
                    if not request.upgrade:
                        if previous_at is not None and request.enqueued_at < previous_at:
                            self.fail(
                                f"FIFO order broken in {key} queue at site "
                                f"{site}: {request.owner} enqueued at "
                                f"{request.enqueued_at} after {previous_at}"
                            )
                        previous_at = request.enqueued_at
                        saw_ordinary = True

    def check_no_aborted_holders(self) -> None:
        for site in sorted(self.db_sites):
            db = self.db_sites[site]
            if db.state is SiteState.CRASHED:
                continue
            for owner in sorted(db.locks.owners() | db.locks.pending_owners()):
                state = self.scheduler.states.get(owner)
                if state is None:
                    continue
                if (
                    state.phase is TxnPhase.DONE
                    and state.verdict is TransactionVerdict.ABORTED
                ):
                    self.fail(
                        f"aborted transaction {owner} still holds or queues a "
                        f"lock at site {site}"
                    )

    def check_acyclic(self) -> None:
        if not self.scheduler.policy.detect_cycles:
            return
        graph = merge_waits_for(
            {site: db.locks.waits_for() for site, db in self.db_sites.items()}
        )
        cycle = find_cycle(graph)
        if cycle is None:
            return
        waiting = [
            txn
            for txn in cycle
            if self.scheduler.states[txn].phase is TxnPhase.WAITING
        ]
        if len(waiting) == len(cycle):
            self.fail(
                f"waits-for cycle {sorted(cycle)} survived between events "
                f"with cycle detection enabled"
            )

    # ------------------------------------------------------------------
    # horizon invariants
    # ------------------------------------------------------------------
    def final_check(self, spec: ThroughputSpec, summary) -> None:
        self.check_no_aborted_holders()
        if summary.offered != spec.n_transactions:
            self.fail(
                f"offered {summary.offered} != admitted {spec.n_transactions}"
            )
        in_flight = summary.blocked + summary.stalled + summary.violated
        if summary.committed + summary.exhausted + in_flight != summary.offered:
            self.fail(
                f"conservation broken: {summary.committed} committed + "
                f"{summary.exhausted} exhausted + {in_flight} in flight != "
                f"{summary.offered} admitted"
            )
        if summary.committed != (
            summary.committed_first_try + summary.committed_after_retry
        ):
            self.fail("committed != first-try + after-retry")
        cause_total = (
            summary.aborted_deadlock
            + summary.aborted_timeout
            + summary.aborted_crash
            + summary.aborted_partition
        )
        if cause_total != summary.aborted:
            self.fail(
                f"abort causes ({cause_total}) do not partition the abort "
                f"counter ({summary.aborted})"
            )
        if not spec.retry.enabled and summary.retries:
            self.fail("retries recorded with retries disabled")


def run_fuzzed_case(case_seed: int) -> None:
    """Execute one random workload with every invariant armed."""
    protocol, spec = random_case(case_seed)
    context = f"case_seed={case_seed} protocol={protocol} spec_seed={spec.seed}"
    latency = spec.effective_latency()
    max_delay = latency.upper_bound
    if spec.faults is not None and spec.faults.retransmit is not None:
        max_delay = spec.faults.effective_max_delay(max_delay)
    cluster = Cluster(spec.n_sites, latency=latency, model=spec.model, seed=spec.seed)
    db_sites = {site: DatabaseSite(site) for site in cluster.site_ids()}
    scheduler = TransactionScheduler(
        cluster,
        create_protocol(protocol),
        db_sites,
        policy=spec.deadlock,
        retry=spec.retry,
        op_delay=spec.op_delay,
        timers=TerminationTimers(max_delay=max_delay),
        seed=spec.seed,
        lock_transport=spec.lock_transport,
    )
    checker = InvariantChecker(context, scheduler, db_sites)
    checker.install()
    if spec.partition is not None:
        cluster.apply_partition_schedule(spec.partition)
    if spec.crashes is not None:
        cluster.apply_crash_schedule(spec.crashes)
    if spec.faults is not None:
        cluster.apply_fault_plan(spec.faults)
        if spec.faults.byzantine:
            from repro.protocols.byzantine import install_byzantine_interceptors

            install_byzantine_interceptors(cluster, spec.faults)
    scheduler.submit_all(
        generate_transactions(spec.workload_config()), arrivals=spec.arrival_times()
    )
    horizon = spec.effective_horizon()
    probe_at = 0.5
    while probe_at < horizon:
        cluster.sim.schedule_at(probe_at, checker.probe, label="invariant-probe")
        probe_at += 2.0
    cluster.run(until=horizon, max_events=2_000_000)
    scheduler.finalize(horizon)

    # Reduce through the real accounting path so the conservation checks
    # cover exactly what ThroughputSummary reports.
    from repro.txn.runner import AbortCause, ThroughputSummary

    summary = ThroughputSummary(
        protocol=protocol, spec_hash="", seed=spec.seed, n_sites=spec.n_sites
    )
    cause_fields = {
        AbortCause.DEADLOCK.value: "aborted_deadlock",
        AbortCause.TIMEOUT.value: "aborted_timeout",
        AbortCause.CRASH.value: "aborted_crash",
        AbortCause.PARTITION.value: "aborted_partition",
    }
    summary.retries = scheduler.retries
    for outcome in scheduler.outcomes():
        summary.offered += 1
        if outcome.verdict is TransactionVerdict.COMMITTED:
            summary.committed += 1
            if outcome.attempts == 1:
                summary.committed_first_try += 1
            else:
                summary.committed_after_retry += 1
        elif outcome.verdict is TransactionVerdict.ABORTED:
            summary.aborted += 1
            name = cause_fields.get(outcome.abort_cause)
            if name is None:
                checker.fail(
                    f"aborted outcome {outcome.transaction_id} carries no "
                    f"known cause ({outcome.abort_cause!r})"
                )
            setattr(summary, name, getattr(summary, name) + 1)
        elif outcome.verdict is TransactionVerdict.BLOCKED:
            summary.blocked += 1
        elif outcome.verdict is TransactionVerdict.STALLED:
            summary.stalled += 1
        else:
            summary.violated += 1
    checker.final_check(spec, summary)


@pytest.mark.parametrize("batch", range(BATCHES))
def test_fuzzed_schedules_hold_invariants(batch):
    """~200 seeded random schedules, every invariant asserted on each."""
    per_batch = N_WORKLOADS // BATCHES
    for offset in range(per_batch):
        run_fuzzed_case(MASTER_SEED + batch * per_batch + offset)


def test_case_generator_is_deterministic():
    protocol_a, spec_a = random_case(MASTER_SEED)
    protocol_b, spec_b = random_case(MASTER_SEED)
    assert protocol_a == protocol_b
    assert spec_a == spec_b


def test_case_generator_mixes_the_axes():
    """The fuzzed population actually covers the new axes."""
    cases = [random_case(MASTER_SEED + index)[1] for index in range(N_WORKLOADS)]
    assert {spec.arrival for spec in cases} == {"uniform", "poisson"}
    assert any(spec.hotspot > 0 for spec in cases)
    assert any(spec.crashes is not None for spec in cases)
    assert any(spec.partition is not None for spec in cases)
    assert any(spec.retry.enabled for spec in cases)
    assert {spec.deadlock.victim for spec in cases} == set(VictimPolicy)
    plans = [spec.faults for spec in cases if spec.faults is not None]
    classes = {label for plan in plans for label in plan.fault_classes()}
    assert {"loss", "duplicate", "reorder", "byzantine"} <= classes
    assert classes & {"send-omission", "receive-omission"}
    assert any(plan.retransmit is not None for plan in plans)
    assert any(plan.retransmit is None for plan in plans)
    # Message faults must force the network lock transport (the fix that
    # lets partitions and loss cut lock acquisition too).
    assert all(
        spec.lock_transport == "network"
        for spec in cases
        if spec.faults is not None and spec.faults.has_message_faults
    )
