"""Throughput scenarios end to end: engine integration, determinism, CLI.

The determinism class mirrors ``tests/engine/test_streaming.py``: the same
task list must produce byte-identical ``ThroughputSummary`` streams across
``workers=1`` and ``workers=4``, and warm caches must serve them without
executing a scenario.
"""

import pytest

from repro.__main__ import main
from repro.engine import JsonlSink, SweepEngine, SweepTask, read_jsonl
from repro.txn.sink import ThroughputSink
from repro.experiments.throughput import (
    BLOCKING_PROTOCOLS,
    NONBLOCKING_PROTOCOLS,
    run_retry_recovery_comparison,
    run_throughput_comparison,
    throughput_tasks,
)
from repro.sim.failures import CrashSchedule
from repro.sim.partition import PartitionSchedule
from repro.txn import (
    DeadlockPolicy,
    RetryPolicy,
    ThroughputSpec,
    ThroughputSummary,
    run_throughput_scenario,
)


@pytest.fixture(scope="module")
def tasks():
    """The determinism matrix: closed-loop partitioned workloads plus
    open-loop retry + Poisson + hot-spot + crash/recovery scenarios."""
    partition = PartitionSchedule.transient(10.0, 18.0, [1, 2], [3])
    closed = [
        SweepTask(
            protocol=protocol,
            spec=ThroughputSpec(
                n_transactions=30, tx_rate=1.0, seed=seed, partition=partition
            ),
        )
        for protocol in ("two-phase-commit", "terminating-three-phase-commit")
        for seed in (0, 1)
    ]
    open_loop = [
        SweepTask(
            protocol=protocol,
            spec=ThroughputSpec(
                n_transactions=30,
                tx_rate=2.0,
                arrival="poisson",
                hotspot=0.8,
                n_keys=4,
                op_delay=0.2,
                seed=seed,
                partition=partition,
                crashes=CrashSchedule.single(2, 14.0, recover_at=20.0),
                deadlock=DeadlockPolicy(detect_cycles=True, wait_timeout=4.0),
                retry=RetryPolicy(max_attempts=3, backoff=0.5),
            ),
        )
        for protocol in ("two-phase-commit", "terminating-three-phase-commit")
        for seed in (0, 1)
    ]
    return closed + open_loop


class TestRunner:
    def test_failure_free_run_commits_everything(self):
        result = run_throughput_scenario(
            "terminating-three-phase-commit",
            ThroughputSpec(n_transactions=20, tx_rate=0.5, seed=0),
        )
        summary = result.summary
        assert summary.offered == 20
        assert summary.committed == 20
        assert summary.committed_first_try == 20
        assert summary.committed_after_retry == summary.retries == 0
        assert summary.blocked == summary.stalled == summary.violated == 0
        assert summary.goodput > 0

    def test_abort_counter_splits_exactly_by_cause(self):
        # Partition write-offs are no longer conflated with deadlock /
        # timeout victims: the cause split partitions the abort counter.
        partition = PartitionSchedule.transient(5.0, 13.0, [1, 2], [3])
        summary = run_throughput_scenario(
            "terminating-three-phase-commit",
            ThroughputSpec(n_transactions=20, tx_rate=2.0, partition=partition),
        ).summary
        assert summary.aborted > 0
        assert summary.aborted_partition > 0
        assert summary.aborted == (
            summary.aborted_deadlock + summary.aborted_timeout
            + summary.aborted_crash + summary.aborted_partition
        )
        assert summary.aborted_deadlock == summary.aborted_timeout == 0

    def test_crash_writeoffs_count_as_crash_cause(self):
        summary = run_throughput_scenario(
            "terminating-three-phase-commit",
            ThroughputSpec(
                n_transactions=10, tx_rate=1.0,
                crashes=CrashSchedule.single(2, 3.0),
            ),
        ).summary
        assert summary.crashes == 1
        assert summary.aborted_crash > 0

    def test_crash_only_run_attributes_no_partition_aborts(self):
        # Commit-phase aborts forced by a crashed participant must land in
        # aborted_crash, not masquerade as partition write-offs.
        summary = run_throughput_scenario(
            "terminating-three-phase-commit",
            ThroughputSpec(
                n_transactions=12, tx_rate=4.0, seed=0,
                crashes=CrashSchedule.single(2, 2.0, recover_at=8.0),
            ),
        ).summary
        assert summary.aborted > 0
        assert summary.aborted_crash == summary.aborted
        assert summary.aborted_partition == 0

    def test_summary_json_round_trips(self):
        summary = run_throughput_scenario(
            "two-phase-commit", ThroughputSpec(n_transactions=10), spec_hash="abc"
        ).summary
        clone = ThroughputSummary.from_json_bytes(summary.to_json_bytes())
        assert clone == summary

    def test_overrides_apply_like_run_scenario(self):
        result = run_throughput_scenario(
            "two-phase-commit", ThroughputSpec(n_transactions=5), n_transactions=3
        )
        assert result.summary.offered == 3


class TestDeterminismAcrossWorkers:
    def test_jsonl_spill_is_byte_identical_across_worker_counts(self, tasks, tmp_path):
        spills = {}
        for workers in (1, 4):
            path = tmp_path / f"w{workers}.jsonl"
            SweepEngine(workers=workers, chunk_size=1).run_streaming(
                tasks, sinks=JsonlSink(path)
            )
            spills[workers] = path.read_bytes()
        assert spills[1] == spills[4]
        assert spills[1].count(b"\n") == len(tasks)

    def test_throughput_aggregates_are_identical(self, tasks):
        aggregates = {}
        for workers in (1, 4):
            sink = ThroughputSink()
            SweepEngine(workers=workers, chunk_size=1).run_streaming(tasks, sinks=sink)
            aggregates[workers] = sink.totals
        assert aggregates[1] == aggregates[4]

    def test_warm_cache_serves_summaries_byte_identically(self, tasks, tmp_path):
        engine = SweepEngine(workers=1, cache=tmp_path / "cache")
        cold_spill = JsonlSink(tmp_path / "cold.jsonl")
        cold = engine.run_streaming(tasks, sinks=cold_spill)
        warm_spill = JsonlSink(tmp_path / "warm.jsonl")
        warm = engine.run_streaming(tasks, sinks=warm_spill)
        assert (cold.executed, cold.cache_hits) == (len(tasks), 0)
        assert (warm.executed, warm.cache_hits) == (0, len(tasks))
        assert (tmp_path / "cold.jsonl").read_bytes() == (
            tmp_path / "warm.jsonl"
        ).read_bytes()

    def test_read_jsonl_yields_throughput_records(self, tasks, tmp_path):
        path = tmp_path / "spill.jsonl"
        SweepEngine(workers=1).run_streaming(tasks[:1], sinks=JsonlSink(path))
        records = list(read_jsonl(path))
        assert len(records) == 1
        assert isinstance(records[0], ThroughputSummary)
        assert records[0].protocol == tasks[0].protocol


class TestGoodputCollapse:
    """The acceptance bar: >= 200 contended transactions per protocol under
    a mid-run partition; blocking protocols strictly below the
    non-blocking three-phase variants."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_throughput_comparison(
            protocols=BLOCKING_PROTOCOLS + NONBLOCKING_PROTOCOLS,
            n_transactions=200,
        )

    def test_every_protocol_ran_the_full_workload(self, report):
        assert len(report.table) == len(BLOCKING_PROTOCOLS) + len(NONBLOCKING_PROTOCOLS)
        for row in report.table:
            assert row["offered"] >= 200

    def test_blocking_goodput_strictly_below_nonblocking(self, report):
        blocking = report.details["blocking_goodput"]
        nonblocking = report.details["nonblocking_goodput"]
        assert blocking and nonblocking
        assert max(blocking.values()) < min(nonblocking.values())

    def test_blocking_protocols_strand_transactions(self, report):
        rows = {row["protocol"]: row for row in report.table}
        for protocol in BLOCKING_PROTOCOLS:
            assert rows[protocol]["blocked"] > 0
        for protocol in NONBLOCKING_PROTOCOLS:
            assert rows[protocol]["aborted"] > 0  # terminated, not stranded

    def test_report_mentions_goodput(self, report):
        assert "goodput" in report.format().lower() or "committed" in report.format()


class TestThroughputTasks:
    def test_grid_covers_onset_load_and_read_fraction(self):
        tasks = throughput_tasks(
            ["two-phase-commit"],
            tx_rates=(0.5, 1.0),
            read_fractions=(0.0, 0.5),
            onset_fractions=(0.25, 0.75),
            n_transactions=10,
        )
        assert len(tasks) == 8
        assert len({task.spec_hash for task in tasks}) == 8

    def test_failure_free_point_has_no_partition(self):
        (task,) = throughput_tasks(
            ["two-phase-commit"], onset_fractions=(None,), n_transactions=10
        )
        assert task.spec.partition is None

    def test_open_loop_axes_reach_the_spec_and_the_hash(self):
        (plain,) = throughput_tasks(["two-phase-commit"], n_transactions=10)
        (open_loop,) = throughput_tasks(
            ["two-phase-commit"],
            n_transactions=10,
            arrival="poisson",
            hotspot=0.5,
            retry=RetryPolicy(max_attempts=3),
            crashes=CrashSchedule.single(2, 5.0, recover_at=9.0),
        )
        assert open_loop.spec.arrival == "poisson"
        assert open_loop.spec.retry.max_attempts == 3
        assert open_loop.spec.crashes is not None
        assert plain.spec_hash != open_loop.spec_hash


class TestRetryRecoveryExperiment:
    """The RETRY panel's acceptance bar: committed-after-retry goodput
    recovers post-heal for the terminating protocols while the blocking
    protocols' backlog grows."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_retry_recovery_comparison(
            protocols=BLOCKING_PROTOCOLS + NONBLOCKING_PROTOCOLS,
            n_transactions=100,
        )

    def test_terminating_protocols_drain_their_backlog_after_heal(self, report):
        after_retry = report.details["committed_after_retry"]
        assert min(after_retry[p] for p in NONBLOCKING_PROTOCOLS) > max(
            after_retry[p] for p in BLOCKING_PROTOCOLS
        )

    def test_blocking_protocols_backlog_grows(self, report):
        unserved = report.details["unserved_backlog"]
        assert min(unserved[p] for p in BLOCKING_PROTOCOLS) > max(
            unserved[p] for p in NONBLOCKING_PROTOCOLS
        )

    def test_retry_storms_burn_the_budget_for_blocking_protocols(self, report):
        totals = report.details["totals"]
        for protocol in BLOCKING_PROTOCOLS:
            assert totals[protocol]["retries"] > 0
        assert report.headline
        assert "after retry" in {k for row in report.table for k in row}

    def test_run_retry_experiment_id(self, capsys):
        assert main(["run", "RETRY"]) == 0
        out = capsys.readouterr().out
        assert "RETRY" in out
        assert "after retry" in out


class TestThroughputCli:
    FAST = [
        "throughput",
        "--transactions", "20",
        "--tx-rate", "1.0",
        "--protocols", "two-phase-commit",
        "--protocols", "terminating-three-phase-commit",
    ]

    def test_prints_the_per_protocol_table(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "goodput (/T)" in out
        assert "two-phase-commit" in out
        assert "scenarios/s" in out

    def test_jsonl_spill_round_trips(self, capsys, tmp_path):
        spill = tmp_path / "tput.jsonl"
        assert main(self.FAST + ["--jsonl", str(spill)]) == 0
        assert "spilled 2 summaries" in capsys.readouterr().out
        records = list(read_jsonl(spill))
        assert [r.protocol for r in records] == [
            "two-phase-commit", "terminating-three-phase-commit",
        ]

    def test_cache_makes_reruns_incremental(self, capsys, tmp_path):
        cached = self.FAST + ["--cache", str(tmp_path)]
        assert main(cached) == 0
        assert "cache: 0 hit(s) / 2 miss(es)" in capsys.readouterr().out
        assert main(cached) == 0
        assert "cache: 2 hit(s) / 0 miss(es)" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flags, flag_name",
        [
            (["--sites", "0"], "--sites"),
            (["--read-fraction", "1.5"], "--read-fraction"),
            (["--ops-per-site", "0"], "--ops-per-site"),
            (["--tx-rate", "0"], "--tx-rate"),
            (["--transactions", "0"], "--transactions"),
            (["--keys", "0"], "--keys"),
            (["--lock-timeout", "0"], "--lock-timeout"),
            (["--partition-at", "2.0"], "--partition-at"),
            (["--no-partition", "--permanent"], "--no-partition"),
            (["--hotspot", "-0.5"], "--hotspot"),
            (["--retries", "-1"], "--retries"),
            (["--retry-backoff", "0"], "--retry-backoff"),
            (["--crash-schedule", "nonsense"], "--crash-schedule"),
            (["--crash-schedule", "9:5.0"], "--crash-schedule"),
            (["--crash-schedule", "2:-5"], "--crash-schedule"),
        ],
    )
    def test_validation_errors_name_the_flag(self, capsys, flags, flag_name):
        assert main(["throughput", *flags]) == 2
        assert flag_name in capsys.readouterr().err

    def test_open_loop_flags_run_end_to_end(self, capsys):
        assert main([
            "throughput",
            "--transactions", "20",
            "--protocols", "terminating-three-phase-commit",
            "--arrival", "poisson",
            "--retries", "2",
            "--hotspot", "0.5",
            "--victim", "fewest-locks",
            "--crash-schedule", "3:10:16",
            "--deadlock", "both",
            "--lock-timeout", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "after retry" in out
        assert "crashes" in out

    def test_unknown_protocol_lists_available(self, capsys):
        assert main(["throughput", "--protocols", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown protocol" in err
        assert "terminating-three-phase-commit" in err

    def test_run_tput_experiment_id(self, capsys):
        assert main(["run", "TPUT"]) == 0
        out = capsys.readouterr().out
        assert "TPUT" in out
        assert "goodput" in out.lower()
