"""Per-transaction multiplexing over shared sites: routing and timer isolation."""

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite
from repro.db.transactions import Operation, Transaction
from repro.protocols.registry import create_protocol
from repro.sim.cluster import Cluster
from repro.txn import TransactionScheduler, TransactionVerdict
from repro.txn.multiplex import SiteMultiplexer


def build(n_sites=3, protocol="terminating-three-phase-commit", **kwargs):
    cluster = Cluster(n_sites)
    db_sites = {site: DatabaseSite(site) for site in cluster.site_ids()}
    scheduler = TransactionScheduler(
        cluster, create_protocol(protocol), db_sites,
        timers=TerminationTimers(max_delay=cluster.max_delay), **kwargs,
    )
    return cluster, db_sites, scheduler


def txn(txn_id, writes):
    """A transaction writing ``{site: key}`` with master site 1."""
    operations = [Operation.write(site, key, txn_id) for site, key in writes]
    return Transaction.create(1, operations, transaction_id=txn_id)


class TestVirtualNodes:
    def test_timers_are_namespaced_per_transaction(self):
        cluster, _, scheduler = build()
        mux = scheduler.multiplexers[1]
        a = mux.virtual_node("txn-a")
        b = mux.virtual_node("txn-b")
        a.set_timer("phase-timeout", 5.0)
        b.set_timer("phase-timeout", 5.0)
        assert a.timer_armed("phase-timeout") and b.timer_armed("phase-timeout")
        a.cancel_all_timers()
        assert not a.timer_armed("phase-timeout")
        assert b.timer_armed("phase-timeout")

    def test_timer_fires_back_with_the_unscoped_name(self):
        cluster, _, scheduler = build()
        fired = []

        class Probe:
            def on_timeout(self, timer):
                fired.append(timer.name)

        virtual = scheduler.multiplexers[2].virtual_node("txn-a")
        virtual.attach(Probe())
        virtual.set_timer("wait-in-w", 1.0)
        cluster.run(until=2.0)
        assert fired == ["wait-in-w"]

    def test_messages_route_by_transaction_id(self):
        cluster = Cluster(2)
        received = {"a": [], "b": []}

        class Probe:
            def __init__(self, bucket):
                self.bucket = bucket

            def on_message(self, payload, envelope):
                self.bucket.append(payload.transaction_id)

        muxes = {site: SiteMultiplexer(cluster.node(site)) for site in (1, 2)}
        for txn_id in ("a", "b"):
            virtual = muxes[2].virtual_node(txn_id)
            virtual.attach(Probe(received[txn_id]))

        from repro.protocols.base import ProtocolMessage

        sender = muxes[1].virtual_node("a")
        sender.send(2, ProtocolMessage(kind="xact", transaction_id="a", sender=1))
        sender_b = muxes[1].virtual_node("b")
        sender_b.send(2, ProtocolMessage(kind="xact", transaction_id="b", sender=1))
        cluster.run(until=5.0)
        assert received == {"a": ["a"], "b": ["b"]}

    def test_unrouted_messages_are_ignored(self):
        cluster = Cluster(2)
        muxes = {site: SiteMultiplexer(cluster.node(site)) for site in (1, 2)}
        from repro.protocols.base import ProtocolMessage

        sender = muxes[1].virtual_node("ghost")
        sender.send(2, ProtocolMessage(kind="xact", transaction_id="ghost", sender=1))
        cluster.run(until=5.0)  # must not raise


class TestConcurrentProtocolInstances:
    def test_two_disjoint_transactions_commit_concurrently(self):
        cluster, db_sites, scheduler = build()
        scheduler.submit(txn("txn-a", [(1, "x1"), (2, "x2"), (3, "x3")]), at=0.0)
        scheduler.submit(txn("txn-b", [(1, "y1"), (2, "y2"), (3, "y3")]), at=0.0)
        cluster.run(until=40.0)
        scheduler.finalize(40.0)
        outcomes = {o.transaction_id: o.verdict for o in scheduler.outcomes()}
        assert outcomes == {
            "txn-a": TransactionVerdict.COMMITTED,
            "txn-b": TransactionVerdict.COMMITTED,
        }
        assert scheduler.peak_in_flight == 2
        # Both transactions' writes were applied at every site.
        assert db_sites[2].value("x2") == "txn-a"
        assert db_sites[2].value("y2") == "txn-b"

    def test_one_decision_does_not_cancel_the_other_transactions_timers(self):
        # txn-a commits quickly; txn-b is admitted later and must still
        # terminate on its own timers (they live on the same nodes).
        cluster, _, scheduler = build()
        scheduler.submit(txn("txn-a", [(1, "x"), (2, "x"), (3, "x")]), at=0.0)
        scheduler.submit(txn("txn-b", [(1, "y"), (2, "y"), (3, "y")]), at=1.0)
        cluster.run(until=40.0)
        scheduler.finalize(40.0)
        verdicts = [o.verdict for o in scheduler.outcomes()]
        assert verdicts == [TransactionVerdict.COMMITTED] * 2
