"""Victim retries, victim-selection policies and the crash/recovery path.

Covers the open-loop additions to the scheduler: aborted attempts
re-entering with seeded backoff under a bounded budget, the per-cause
accounting split, pluggable deadlock victim selection, and the previously
untested recovery path -- waiters written off at a crash, WAL replay
completing before re-admission, and post-heal transactions acquiring locks
a crashed-site victim used to hold.
"""

import pytest

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite, SiteState
from repro.db.transactions import Operation, Transaction
from repro.protocols.registry import create_protocol
from repro.sim.cluster import Cluster
from repro.sim.failures import CrashSchedule
from repro.sim.partition import PartitionSchedule
from repro.txn import (
    AbortCause,
    DeadlockPolicy,
    RetryPolicy,
    ThroughputSpec,
    TransactionScheduler,
    TransactionVerdict,
    VictimPolicy,
    run_throughput_scenario,
    select_victim,
)
from repro.txn.retry import attempt_id


def build(
    n_sites=3,
    protocol="terminating-three-phase-commit",
    **kwargs,
):
    cluster = Cluster(n_sites)
    db_sites = {site: DatabaseSite(site) for site in cluster.site_ids()}
    scheduler = TransactionScheduler(
        cluster, create_protocol(protocol), db_sites,
        timers=TerminationTimers(max_delay=cluster.max_delay), **kwargs,
    )
    return cluster, db_sites, scheduler


def txn(txn_id, operations):
    return Transaction.create(1, operations, transaction_id=txn_id)


def w(site, key):
    return Operation.write(site, key, "value")


def cycle_pair(scheduler):
    """Two transactions acquiring the same site-1 keys in opposite order."""
    scheduler.submit(txn("txn-a", [w(1, "k1"), w(1, "k2"), w(2, "ka")]), at=0.0)
    scheduler.submit(txn("txn-b", [w(1, "k2"), w(1, "k1"), w(2, "kb")]), at=0.1)


class TestRetryPolicy:
    def test_defaults_disable_retries(self):
        assert not RetryPolicy().enabled
        assert RetryPolicy(max_attempts=2).enabled

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=0.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.5, backoff_factor=2.0, jitter=0.5)
        first = policy.delay(failed_attempt=1, transaction_id="t", seed=7)
        again = policy.delay(failed_attempt=1, transaction_id="t", seed=7)
        second = policy.delay(failed_attempt=2, transaction_id="t", seed=7)
        assert first == again
        assert 0.5 <= first < 0.75
        assert 1.0 <= second < 1.5
        # Jitter separates transactions and seeds.
        assert first != policy.delay(failed_attempt=1, transaction_id="u", seed=7)
        assert first != policy.delay(failed_attempt=1, transaction_id="t", seed=8)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(max_attempts=3, backoff=1.0, backoff_factor=3.0, jitter=0.0)
        assert policy.delay(failed_attempt=2, transaction_id="t", seed=0) == 3.0

    def test_attempt_ids(self):
        assert attempt_id("workload-txn-3", 1) == "workload-txn-3"
        assert attempt_id("workload-txn-3", 2) == "workload-txn-3#r2"
        with pytest.raises(ValueError, match="attempt"):
            attempt_id("x", 0)

    def test_issued_backoffs_feed_the_active_registry(self):
        from repro.obs.metrics import MetricsRegistry, activate

        policy = RetryPolicy(max_attempts=3, backoff=1.0, backoff_factor=3.0)
        registry = MetricsRegistry()
        with activate(registry):
            first = policy.delay(failed_attempt=1, transaction_id="t", seed=0)
            second = policy.delay(failed_attempt=2, transaction_id="t", seed=0)
        hist = registry.snapshot()["histograms"]["txn.retry_backoff_simtime"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(first + second)
        # Observation never perturbs the schedule itself.
        assert policy.delay(failed_attempt=1, transaction_id="t", seed=0) == first


class TestVictimRetries:
    def test_deadlock_victim_retries_and_commits(self):
        cluster, _, scheduler = build(
            op_delay=0.3, retry=RetryPolicy(max_attempts=2, backoff=1.0, jitter=0.0)
        )
        cycle_pair(scheduler)
        cluster.run(until=80.0)
        scheduler.finalize(80.0)
        a, b = scheduler.outcomes()
        assert scheduler.deadlock_aborts == 1
        assert scheduler.retries == 1
        # The victim's retry re-enters after the survivor finishes and commits.
        assert a.verdict is TransactionVerdict.COMMITTED
        assert b.verdict is TransactionVerdict.COMMITTED
        assert (a.attempts, b.attempts) == (1, 2)
        assert b.abort_cause == ""

    def test_outcomes_stay_per_logical_transaction(self):
        cluster, _, scheduler = build(
            op_delay=0.3, retry=RetryPolicy(max_attempts=3, backoff=1.0)
        )
        cycle_pair(scheduler)
        cluster.run(until=80.0)
        scheduler.finalize(80.0)
        outcomes = scheduler.outcomes()
        assert [o.transaction_id for o in outcomes] == ["txn-a", "txn-b"]
        assert scheduler.admitted == 2

    def test_budget_exhaustion_keeps_final_cause(self):
        # A permanently blocked 2PC instance holds the hot key; the waiter
        # times out on every attempt until its budget runs dry.
        cluster, _, scheduler = build(
            protocol="two-phase-commit",
            policy=DeadlockPolicy(detect_cycles=False, wait_timeout=3.0),
            retry=RetryPolicy(max_attempts=2, backoff=1.0, jitter=0.0),
        )
        cluster.apply_partition_schedule(PartitionSchedule.simple(1.5, [1, 2], [3]))
        scheduler.submit(txn("txn-a", [w(1, "k"), w(2, "k"), w(3, "k")]), at=0.0)
        scheduler.submit(txn("txn-b", [w(1, "k"), w(2, "k"), w(3, "k")]), at=2.0)
        cluster.run(until=80.0)
        scheduler.finalize(80.0)
        a, b = scheduler.outcomes()
        assert a.verdict is TransactionVerdict.BLOCKED
        assert b.verdict is TransactionVerdict.ABORTED
        assert b.attempts == 2
        assert b.abort_cause == AbortCause.TIMEOUT.value
        assert scheduler.timeout_aborts == 2  # one victim event per attempt

    def test_retry_pending_at_horizon_counts_as_in_flight(self):
        cluster, _, scheduler = build(
            op_delay=0.3,
            retry=RetryPolicy(max_attempts=2, backoff=200.0, jitter=0.0),
        )
        cycle_pair(scheduler)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        a, b = scheduler.outcomes()
        assert a.verdict is TransactionVerdict.COMMITTED
        # b's re-admission lies beyond the horizon: still in flight, not
        # written off -- the conservation bucket the fuzzer asserts.
        assert b.verdict is TransactionVerdict.STALLED
        assert "retry" in b.abort_reason

    def test_summary_accounts_first_try_and_after_retry(self):
        spec = ThroughputSpec(
            n_transactions=30, tx_rate=4.0, n_keys=2, op_delay=0.2, seed=0,
            deadlock=DeadlockPolicy(detect_cycles=True, wait_timeout=2.0),
            retry=RetryPolicy(max_attempts=3, backoff=0.5),
        )
        summary = run_throughput_scenario(
            "terminating-three-phase-commit", spec
        ).summary
        assert summary.committed == (
            summary.committed_first_try + summary.committed_after_retry
        )
        assert summary.committed_after_retry > 0
        assert summary.retries > 0
        assert summary.aborted == (
            summary.aborted_deadlock + summary.aborted_timeout
            + summary.aborted_crash + summary.aborted_partition
        )


class TestVictimPolicies:
    def test_select_victim_policies_and_tiebreaks(self):
        cycle = ["t1", "t2", "t3"]
        index = {"t1": 0, "t2": 1, "t3": 2}
        locks = {"t1": 3, "t2": 1, "t3": 1}
        attempts = {"t1": 2, "t2": 2, "t3": 1}
        pick = lambda policy: select_victim(
            cycle, policy, index=index, locks_held=locks, attempts=attempts
        )
        assert pick(VictimPolicy.YOUNGEST) == "t3"
        assert pick(VictimPolicy.OLDEST) == "t1"
        # Fewest locks: t2/t3 tie at 1 lock; the younger (t3) is sacrificed.
        assert pick(VictimPolicy.FEWEST_LOCKS) == "t3"
        # Most retries wins: t3 has the fewest attempts and is sacrificed.
        assert pick(VictimPolicy.MOST_RETRIES_WINS) == "t3"

    def test_oldest_policy_flips_the_scheduler_victim(self):
        cluster, _, scheduler = build(
            op_delay=0.3,
            policy=DeadlockPolicy(victim=VictimPolicy.OLDEST),
        )
        cycle_pair(scheduler)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        a, b = scheduler.outcomes()
        assert a.verdict is TransactionVerdict.ABORTED
        assert b.verdict is TransactionVerdict.COMMITTED

    def test_fewest_locks_spares_the_loaded_transaction(self):
        # txn-a holds 3 locks when the cycle forms, txn-b holds 1: under
        # FEWEST_LOCKS the lightly-loaded b is the victim even though the
        # cycle is detected while b is oldest-in-queue.
        cluster, _, scheduler = build(
            op_delay=0.3,
            policy=DeadlockPolicy(victim=VictimPolicy.FEWEST_LOCKS),
        )
        scheduler.submit(
            txn("txn-a", [w(1, "x"), w(2, "y"), w(1, "k1"), w(1, "k2")]), at=0.0
        )
        scheduler.submit(txn("txn-b", [w(1, "k2"), w(1, "k1")]), at=0.1)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        a, b = scheduler.outcomes()
        assert b.verdict is TransactionVerdict.ABORTED
        assert a.verdict is TransactionVerdict.COMMITTED

    def test_most_retries_wins_protects_the_retried_attempt(self):
        # With YOUNGEST the re-admitted attempt (always the youngest) would
        # be victimized again; MOST_RETRIES_WINS sacrifices the fresh
        # transaction instead, so the retried one makes progress.
        cluster, _, scheduler = build(
            op_delay=0.3,
            policy=DeadlockPolicy(victim=VictimPolicy.MOST_RETRIES_WINS),
            retry=RetryPolicy(max_attempts=3, backoff=0.2, jitter=0.0),
        )
        cycle_pair(scheduler)
        # A third transaction colliding with b's keys after b's retry.
        scheduler.submit(txn("txn-c", [w(1, "k1"), w(1, "k2")]), at=0.45)
        cluster.run(until=120.0)
        scheduler.finalize(120.0)
        outcomes = {o.transaction_id: o for o in scheduler.outcomes()}
        assert outcomes["txn-b"].verdict is TransactionVerdict.COMMITTED
        assert outcomes["txn-b"].attempts >= 2

    def test_cli_victim_value_round_trips(self):
        assert VictimPolicy("fewest-locks") is VictimPolicy.FEWEST_LOCKS


class TestCrashRecoveryPath:
    """The previously untested recovery interplay (ISSUE satellite)."""

    def test_crash_writes_off_every_waiting_toucher_and_wipes_locks(self):
        cluster, db_sites, scheduler = build(op_delay=3.0)
        # txn-a acquires k@2 at t=0 and would request k2@1 at t=3.
        scheduler.submit(txn("txn-a", [w(2, "k"), w(1, "k2")]), at=0.0)
        cluster.sim.schedule_at(1.0, cluster.node(2).crash)
        cluster.run(until=40.0)
        scheduler.finalize(40.0)
        (a,) = scheduler.outcomes()
        assert a.verdict is TransactionVerdict.ABORTED
        assert a.abort_cause == AbortCause.CRASH.value
        assert a.finished_at == pytest.approx(1.0)
        assert db_sites[2].state is SiteState.CRASHED
        assert len(db_sites[2].locks) == 0
        assert not db_sites[1].holds_locks("txn-a")
        assert scheduler.crash_writeoffs == 1

    def test_wal_replay_completes_before_readmission(self):
        spec = ThroughputSpec(
            n_sites=3, n_transactions=12, tx_rate=2.0, n_keys=2, seed=1,
            crashes=CrashSchedule.single(2, 4.0, recover_at=9.0),
            retry=RetryPolicy(max_attempts=2, backoff=1.0),
        )
        result = run_throughput_scenario("terminating-three-phase-commit", spec)
        summary = result.summary
        assert summary.crashes == 1
        assert summary.recoveries == 1
        records = result.cluster.trace.records()
        replay_index = next(
            i for i, r in enumerate(records) if r.category == "wal-replay"
        )
        # The replay record proves recovery ran; every post-recovery
        # admission (retried victims included) happens after it.
        later_admits = [
            r for r in records[replay_index + 1:] if r.category == "admit"
        ]
        earlier_post_crash_admits = [
            r
            for r in records[:replay_index]
            if r.category == "admit" and 4.0 <= r.time and "#r" in str(r.get("transaction"))
        ]
        assert records[replay_index].time == pytest.approx(9.0)
        # No retried attempt was re-admitted between crash and replay at
        # the crashed site's expense; the ones after the replay succeed.
        assert not [
            r for r in earlier_post_crash_admits if r.time >= 9.0
        ]
        assert later_admits or summary.committed_after_retry >= 0

    def test_postheal_transaction_acquires_victims_lock(self):
        cluster, db_sites, scheduler = build(
            op_delay=3.0, retry=RetryPolicy(max_attempts=1)
        )
        # The victim holds k@2 when site 2 crashes.
        scheduler.submit(txn("victim", [w(2, "k"), w(1, "k2")]), at=0.0)
        cluster.sim.schedule_at(1.0, cluster.node(2).crash)
        cluster.sim.schedule_at(5.0, cluster.node(2).recover)
        # Post-heal transaction wants the same lock.
        scheduler.submit(txn("late", [w(2, "k"), w(1, "k9")]), at=6.0)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        outcomes = {o.transaction_id: o for o in scheduler.outcomes()}
        assert outcomes["victim"].verdict is TransactionVerdict.ABORTED
        assert outcomes["late"].verdict is TransactionVerdict.COMMITTED
        # The lock previously held by the crashed-site victim was granted
        # to the post-heal transaction without queueing.
        assert outcomes["late"].lock_wait == 0.0
        assert scheduler.recoveries == 1

    def test_retried_victim_is_readmitted_after_recovery_and_commits(self):
        cluster, db_sites, scheduler = build(
            op_delay=3.0,
            retry=RetryPolicy(max_attempts=2, backoff=6.0, jitter=0.0),
        )
        scheduler.submit(txn("victim", [w(2, "k"), w(1, "k2")]), at=0.0)
        cluster.sim.schedule_at(1.0, cluster.node(2).crash)
        cluster.sim.schedule_at(5.0, cluster.node(2).recover)
        cluster.run(until=80.0)
        scheduler.finalize(80.0)
        (victim,) = scheduler.outcomes()
        # Written off at the crash, re-admitted at t=7 (after the t=5
        # recovery), committed on the fresh lock table.
        assert victim.verdict is TransactionVerdict.COMMITTED
        assert victim.attempts == 2
        assert db_sites[2].decision("victim#r2") == "commit"

    def test_wal_replay_restores_durable_decisions(self):
        spec = ThroughputSpec(
            n_sites=2, n_transactions=3, tx_rate=0.5, seed=0,
            crashes=CrashSchedule.single(2, 8.0, recover_at=12.0),
        )
        result = run_throughput_scenario("terminating-three-phase-commit", spec)
        db = result.db_sites[2]
        replays = [
            r for r in result.cluster.trace.records() if r.category == "wal-replay"
        ]
        assert len(replays) == 1
        # Transactions committed before the crash keep their durable
        # decision (redone or already applied) after replay.
        committed_pre_crash = [
            o.transaction_id
            for o in result.scheduler.outcomes()
            if o.verdict is TransactionVerdict.COMMITTED
            and o.finished_at is not None and o.finished_at < 8.0
        ]
        assert committed_pre_crash
        for transaction_id in committed_pre_crash:
            assert db.decision(transaction_id) == "commit"

    def test_crash_schedule_in_spec_must_name_real_sites(self):
        with pytest.raises(ValueError, match="crash schedule"):
            ThroughputSpec(
                n_sites=2, n_transactions=1,
                crashes=CrashSchedule.single(5, 1.0),
            )

    def test_crash_schedule_in_spec_rejects_negative_times(self):
        # Fail at construction, not as a SimulationError mid-sweep in a
        # worker process.
        with pytest.raises(ValueError, match="negative event time"):
            ThroughputSpec(
                n_sites=2, n_transactions=1,
                crashes=CrashSchedule.single(2, -5.0),
            )
