"""Scheduler semantics: contention, FIFO waits, deadlocks, blocked holders."""

import pytest

from repro.core.termination import TerminationTimers
from repro.db.site import DatabaseSite
from repro.db.transactions import Operation, Transaction
from repro.protocols.registry import create_protocol
from repro.sim.cluster import Cluster
from repro.sim.partition import PartitionSchedule
from repro.txn import (
    DeadlockPolicy,
    ThroughputSpec,
    TransactionScheduler,
    TransactionVerdict,
    find_cycle,
    run_throughput_scenario,
)


def build(n_sites=3, protocol="terminating-three-phase-commit", **kwargs):
    cluster = Cluster(n_sites)
    db_sites = {site: DatabaseSite(site) for site in cluster.site_ids()}
    scheduler = TransactionScheduler(
        cluster, create_protocol(protocol), db_sites,
        timers=TerminationTimers(max_delay=cluster.max_delay), **kwargs,
    )
    return cluster, db_sites, scheduler


def txn(txn_id, operations):
    return Transaction.create(1, operations, transaction_id=txn_id)


def w(site, key):
    return Operation.write(site, key, "value")


class TestFifoContention:
    def test_conflicting_transaction_waits_for_the_holder(self):
        cluster, _, scheduler = build()
        scheduler.submit(txn("txn-a", [w(1, "k"), w(2, "k"), w(3, "k")]), at=0.0)
        scheduler.submit(txn("txn-b", [w(1, "k"), w(2, "k"), w(3, "k")]), at=0.5)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        a, b = scheduler.outcomes()
        assert a.verdict is b.verdict is TransactionVerdict.COMMITTED
        assert a.lock_wait == 0.0
        assert b.lock_wait > 0.0
        # Strict 2PL: b could only start after a released (committed).
        assert b.started_at >= a.finished_at

    def test_queued_transactions_commit_in_admission_order(self):
        cluster, _, scheduler = build()
        for index in range(4):
            scheduler.submit(
                txn(f"txn-{index}", [w(1, "hot"), w(2, "hot"), w(3, "hot")]),
                at=0.25 * index,
            )
        cluster.run(until=120.0)
        scheduler.finalize(120.0)
        outcomes = scheduler.outcomes()
        assert [o.verdict for o in outcomes] == [TransactionVerdict.COMMITTED] * 4
        finished = [o.finished_at for o in outcomes]
        assert finished == sorted(finished)

    def test_read_only_transactions_share_locks(self):
        cluster, _, scheduler = build()
        reads = [Operation.read(site, "k") for site in (1, 2, 3)]
        scheduler.submit(txn("txn-a", reads), at=0.0)
        scheduler.submit(txn("txn-b", list(reads)), at=0.0)
        cluster.run(until=40.0)
        scheduler.finalize(40.0)
        a, b = scheduler.outcomes()
        assert a.lock_wait == b.lock_wait == 0.0
        assert scheduler.peak_in_flight == 2


class TestDeadlockHandling:
    def cycle_pair(self, scheduler):
        """Two transactions acquiring the same site-1 keys in opposite order."""
        scheduler.submit(
            txn("txn-a", [w(1, "k1"), w(1, "k2"), w(2, "ka")]), at=0.0
        )
        scheduler.submit(
            txn("txn-b", [w(1, "k2"), w(1, "k1"), w(2, "kb")]), at=0.1
        )

    def test_two_transaction_cycle_aborts_exactly_one_victim(self):
        cluster, _, scheduler = build(op_delay=0.3)
        self.cycle_pair(scheduler)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        a, b = scheduler.outcomes()
        assert scheduler.deadlock_aborts == 1
        # The youngest transaction (b) is the victim; the survivor commits.
        assert b.verdict is TransactionVerdict.ABORTED
        assert "deadlock" in b.abort_reason
        assert a.verdict is TransactionVerdict.COMMITTED

    def test_victim_releases_its_locks_everywhere(self):
        cluster, db_sites, scheduler = build(op_delay=0.3)
        self.cycle_pair(scheduler)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        for site in (1, 2):
            assert not db_sites[site].holds_locks("txn-b")
        assert db_sites[1].decision("txn-b") == "abort"

    def test_detection_disabled_leaves_the_cycle_stuck(self):
        cluster, _, scheduler = build(
            op_delay=0.3, policy=DeadlockPolicy(detect_cycles=False)
        )
        self.cycle_pair(scheduler)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        a, b = scheduler.outcomes()
        assert scheduler.deadlock_aborts == 0
        assert a.verdict is TransactionVerdict.STALLED
        assert b.verdict is TransactionVerdict.STALLED

    def test_lock_wait_timeout_breaks_the_cycle_instead(self):
        cluster, _, scheduler = build(
            op_delay=0.3,
            policy=DeadlockPolicy(detect_cycles=False, wait_timeout=3.0),
        )
        self.cycle_pair(scheduler)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        assert scheduler.timeout_aborts >= 1
        verdicts = {o.transaction_id: o.verdict for o in scheduler.outcomes()}
        assert TransactionVerdict.COMMITTED in verdicts.values()

    def test_promotion_cascade_during_victim_abort_counts_one_victim(self):
        # Reentrancy regression: while victim V's abort walks its
        # participant sites, each release promotes waiter H, whose
        # synchronous re-requests re-trigger detection while V's queued
        # requests at later sites are still pending -- the stale cycle must
        # not be broken a second time.
        cluster, _, scheduler = build(n_sites=2)
        scheduler.submit(txn("txn-x", [w(1, "k0"), w(2, "kx")]), at=0.0)
        scheduler.submit(
            txn("txn-h", [w(2, "k2"), w(1, "k0"), w(1, "k1"), w(2, "k4")]), at=0.2
        )
        scheduler.submit(
            txn("txn-v", [w(1, "k1"), w(2, "k4"), w(2, "k2")]), at=0.4
        )
        cluster.run(until=80.0)
        scheduler.finalize(80.0)
        x, h, v = scheduler.outcomes()
        assert scheduler.deadlock_aborts == 1
        assert scheduler.waiting == 0 and scheduler.running == 0
        assert v.verdict is TransactionVerdict.ABORTED
        assert x.verdict is TransactionVerdict.COMMITTED
        assert h.verdict is TransactionVerdict.COMMITTED

    def test_find_cycle_is_deterministic(self):
        edges = {"a": {"b"}, "b": {"c"}, "c": {"a"}, "d": {"a"}}
        assert find_cycle(edges) == find_cycle(dict(reversed(list(edges.items()))))
        assert set(find_cycle(edges)) == {"a", "b", "c"}

    def test_find_cycle_none_on_acyclic_graph(self):
        assert find_cycle({"a": {"b"}, "b": {"c"}, "d": {"c"}}) is None


class TestBlockedHoldersThrottle:
    def test_blocked_two_phase_commit_starves_the_queue(self):
        # A permanent partition strikes while txn-a's 2PC instance is in
        # flight: it blocks, keeps its locks, and txn-b (same keys) stalls.
        cluster, db_sites, scheduler = build(protocol="two-phase-commit")
        cluster.apply_partition_schedule(
            PartitionSchedule.simple(1.5, [1, 2], [3])
        )
        scheduler.submit(txn("txn-a", [w(1, "k"), w(2, "k"), w(3, "k")]), at=0.0)
        scheduler.submit(txn("txn-b", [w(1, "k"), w(2, "k"), w(3, "k")]), at=2.0)
        cluster.run(until=80.0)
        scheduler.finalize(80.0)
        a, b = scheduler.outcomes()
        assert a.verdict is TransactionVerdict.BLOCKED
        assert b.verdict is TransactionVerdict.STALLED
        assert db_sites[1].holds_locks("txn-a")
        assert b.lock_wait == pytest.approx(78.0)

    def test_terminating_protocol_frees_the_queue(self):
        cluster, db_sites, scheduler = build()
        cluster.apply_partition_schedule(
            PartitionSchedule.simple(1.5, [1, 2], [3])
        )
        scheduler.submit(txn("txn-a", [w(1, "k"), w(2, "k"), w(3, "k")]), at=0.0)
        scheduler.submit(txn("txn-b", [w(1, "k"), w(2, "k"), w(3, "k")]), at=2.0)
        cluster.run(until=80.0)
        scheduler.finalize(80.0)
        a, b = scheduler.outcomes()
        # The termination protocol ends txn-a everywhere; its locks free up
        # and txn-b at least reaches its own protocol (site 3 is cut off,
        # so txn-b terminates too rather than stalling in the queue).
        assert a.verdict in (TransactionVerdict.COMMITTED, TransactionVerdict.ABORTED)
        assert b.verdict in (TransactionVerdict.COMMITTED, TransactionVerdict.ABORTED)
        assert not db_sites[1].holds_locks("txn-a")
        assert not db_sites[1].holds_locks("txn-b")


class TestSiteCrashes:
    def test_waiters_at_a_crashed_site_are_written_off_not_stalled(self):
        cluster, _, scheduler = build()
        # txn-a holds the hot key's locks; txn-b queues behind it at site 1;
        # site 1 then crashes while txn-b is still waiting.
        scheduler.submit(txn("txn-a", [w(1, "k"), w(2, "k"), w(3, "k")]), at=0.0)
        scheduler.submit(txn("txn-b", [w(1, "k"), w(2, "k"), w(3, "k")]), at=0.5)
        cluster.sim.schedule_at(1.0, cluster.node(1).crash)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        a, b = scheduler.outcomes()
        assert b.verdict is TransactionVerdict.ABORTED
        assert "crashed" in b.abort_reason
        assert b.finished_at == pytest.approx(1.0)

    def test_advance_skips_requests_to_a_crashed_site(self):
        cluster, _, scheduler = build(op_delay=1.0)
        # With op_delay the transaction reaches site 2's request only after
        # the crash; it must be written off cleanly, not raise mid-event.
        scheduler.submit(txn("txn-a", [w(1, "k"), w(2, "k")]), at=0.0)
        cluster.sim.schedule_at(0.5, cluster.node(2).crash)
        cluster.run(until=60.0)
        scheduler.finalize(60.0)
        (a,) = scheduler.outcomes()
        assert a.verdict is TransactionVerdict.ABORTED
        assert "site 2 crashed" in a.abort_reason


class TestSpecValidation:
    def test_spec_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="tx_rate"):
            ThroughputSpec(tx_rate=0.0)

    def test_spec_rejects_bad_site_count(self):
        with pytest.raises(ValueError, match="n_sites"):
            ThroughputSpec(n_sites=0)

    def test_spec_rejects_bad_read_fraction(self):
        with pytest.raises(ValueError, match="read_fraction"):
            run_throughput_scenario(
                "two-phase-commit", ThroughputSpec(n_transactions=1), read_fraction=1.5
            )

    def test_policy_rejects_bad_timeout(self):
        with pytest.raises(ValueError, match="wait_timeout"):
            DeadlockPolicy(wait_timeout=0.0)
