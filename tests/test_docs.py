"""Documentation guarantees: docstring coverage and verbatim-runnable examples.

Mirrors the CI doc-check job (``tools/check_docs.py``): engine/protocol
modules (and the rest of ``src/repro``) must carry module docstrings, and
every python code block in README.md / docs/ must execute as written.
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


CHECKER = _load_checker()


def test_every_module_has_a_docstring():
    assert CHECKER.missing_docstrings() == []


def test_docs_tree_exists():
    for name in (
        "architecture.md",
        "concurrency.md",
        "paper-map.md",
        "sharding.md",
        "sweep-engine.md",
    ):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"


def test_doc_code_blocks_run_verbatim():
    blocks = list(CHECKER.iter_code_blocks())
    assert blocks, "expected executable python blocks in README/docs"
    failures = CHECKER.run_code_blocks()
    assert failures == [], "\n\n".join(failures)
