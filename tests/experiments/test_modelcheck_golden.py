"""Golden-table regression tests for the model-checking experiments.

``golden_modelcheck.json`` pins the exhaustive checker's observable output
-- states/edges explored, frontier depths, every invariant verdict and the
shape of every minimal counterexample -- at both site counts, plus the
aggregated differential-validation table.  Any change to the explorer's
successor semantics, the invariant definitions or the BFS trace minimality
shows up as a golden diff and must be regenerated deliberately::

    PYTHONPATH=src python tests/experiments/regen_modelcheck_golden.py
"""

import json
import pathlib

import pytest

from repro import experiments as ex

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_modelcheck.json"

# The exact invocations the goldens were captured with (lockstep with
# regen_modelcheck_golden.py).
RUNS = {
    "MODELCHECK_N2": lambda: ex.run_modelcheck_verification(n_sites=2),
    "MODELCHECK_N3": lambda: ex.run_modelcheck_verification(n_sites=3),
    "DIFF": lambda: ex.run_differential_validation(count=40, seed=0),
}


def _counterexample_shapes(report):
    shapes = []
    for summary in report.details.get("summaries", []):
        for name in sorted(summary.counterexamples):
            steps = summary.counterexample(name)
            shapes.append(
                {
                    "protocol": summary.protocol,
                    "fault": summary.fault,
                    "invariant": name,
                    "steps": len(steps),
                    "actions": [step["action"] for step in steps],
                    "final_locals": steps[-1]["locals"] if steps else [],
                }
            )
    return shapes


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", sorted(RUNS))
def test_report_matches_golden(name, goldens):
    golden = goldens[name]
    report = RUNS[name]()
    assert report.experiment == golden["experiment"]
    assert report.title == golden["title"]
    assert report.headline == golden["headline"]
    assert report.table == golden["table"]
    assert _counterexample_shapes(report) == golden["counterexamples"]


def test_goldens_cover_every_run(goldens):
    assert sorted(goldens) == sorted(RUNS)
    for name, golden in goldens.items():
        assert golden["table"], f"{name} golden has an empty table"
        assert golden["headline"], f"{name} golden has an empty headline"


def test_goldens_pin_the_paper_observations(goldens):
    """The goldens themselves encode the paper's two-site/three-site split."""
    n3 = {
        (row["protocol"], row["fault"]): row
        for row in goldens["MODELCHECK_N3"]["table"]
    }
    n2 = {
        (row["protocol"], row["fault"]): row
        for row in goldens["MODELCHECK_N2"]["table"]
    }
    # Observation 2's protocol errs at three sites but not at two.
    naive = "naive-extended-three-phase-commit"
    assert n3[(naive, "partition")]["same-decision"].startswith("violated")
    assert n2[(naive, "partition")]["same-decision"] == "holds"
    # 2PC never errs -- it blocks under faults at any site count.
    for table in (n2, n3):
        for fault in ("single-crash", "partition"):
            row = table[("two-phase-commit", fault)]
            assert row["same-decision"] == "holds"
            assert row["non-blocking"].startswith("violated")
    # The differential table reports zero disagreements everywhere.
    assert all(
        row["disagreements"] == 0 for row in goldens["DIFF"]["table"]
    )
