"""Regenerate ``golden_modelcheck.json`` for test_modelcheck_golden.py.

Run only when the checker's output changes *on purpose* (a protocol fix, a
new invariant, a semantics change in the explorer)::

    PYTHONPATH=src python tests/experiments/regen_modelcheck_golden.py

The goldens pin, per experiment, the full table (states/edges explored,
frontier depth, per-invariant verdicts) plus the *shape* of every
counterexample trace (length, action sequence, final local-state vector)
-- enough to catch any drift in the explored graph or in minimality
without serializing whole global states.  The invocations must stay in
lockstep with ``RUNS`` in ``test_modelcheck_golden.py``.
"""

import json
import pathlib

from repro import experiments as ex

RUNS = {
    "MODELCHECK_N2": lambda: ex.run_modelcheck_verification(n_sites=2),
    "MODELCHECK_N3": lambda: ex.run_modelcheck_verification(n_sites=3),
    "DIFF": lambda: ex.run_differential_validation(count=40, seed=0),
}


def counterexample_shapes(report):
    """The trace shapes of every violated invariant in a MODELCHECK report."""
    shapes = []
    for summary in report.details.get("summaries", []):
        for name in sorted(summary.counterexamples):
            steps = summary.counterexample(name)
            shapes.append(
                {
                    "protocol": summary.protocol,
                    "fault": summary.fault,
                    "invariant": name,
                    "steps": len(steps),
                    "actions": [step["action"] for step in steps],
                    "final_locals": steps[-1]["locals"] if steps else [],
                }
            )
    return shapes


def golden_entry(report):
    """The serialized form of one report (shared with the test)."""
    return {
        "experiment": report.experiment,
        "title": report.title,
        "headline": report.headline,
        "table": report.table,
        "counterexamples": counterexample_shapes(report),
    }


def main() -> None:
    golden = {name: golden_entry(fn()) for name, fn in RUNS.items()}
    path = pathlib.Path(__file__).parent / "golden_modelcheck.json"
    path.write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {path} ({len(golden)} experiments)")


if __name__ == "__main__":
    main()
