"""Tests for the CLI entry point and the multiple-partitioning experiment."""

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.experiments.multiple_partitioning import run_multiple_partitioning, three_way_splits


class TestCli:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "FIG1"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output
        assert "Two-phase commit" in output

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "lemma12"]) == 0
        assert "LEMMA12" in capsys.readouterr().out

    def test_run_multiple_ids(self, capsys):
        assert main(["run", "FIG1", "SEC7"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output
        assert "SEC7" in output

    def test_unknown_id_returns_error(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_id_has_a_callable(self):
        for experiment_id, runner in EXPERIMENTS.items():
            assert callable(runner), experiment_id


class TestSweepCli:
    SWEEP = ["sweep", "--protocol", "two-phase-commit", "--times", "0.5", "1.5"]

    def test_stream_prints_the_same_verdict_table(self, capsys):
        assert main(self.SWEEP) == 0
        materialized = capsys.readouterr().out
        assert main(self.SWEEP + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        # Same table; only the stats footer may differ.
        assert materialized.splitlines()[:3] == streamed.splitlines()[:3]

    def test_stream_spills_jsonl(self, capsys, tmp_path):
        from repro.engine import read_jsonl

        spill = tmp_path / "spill.jsonl"
        assert main(self.SWEEP + ["--stream", "--jsonl", str(spill)]) == 0
        assert "spilled" in capsys.readouterr().out
        assert sum(1 for _ in read_jsonl(spill)) == 6  # 2 onsets x 3 splits

    def test_stats_line_reports_cache_effectiveness(self, capsys, tmp_path):
        cached = self.SWEEP + ["--cache", str(tmp_path)]
        assert main(cached) == 0
        assert "cache: 0 hit(s) / 6 miss(es)" in capsys.readouterr().out
        assert main(cached) == 0
        assert "cache: 6 hit(s) / 0 miss(es)" in capsys.readouterr().out

    def test_jsonl_requires_stream(self, capsys):
        assert main(self.SWEEP + ["--jsonl", "x.jsonl"]) == 2
        assert "--jsonl requires --stream" in capsys.readouterr().err

    def test_refine_conflicts_with_stream(self, capsys):
        assert main(self.SWEEP + ["--refine", "--stream"]) == 2
        assert "--refine cannot be combined" in capsys.readouterr().err


class TestShardMergeCli:
    SWEEP = ["--protocol", "two-phase-commit", "--times", "0.5", "1.5"]

    def _shard_all(self, tmp_path, *extra):
        spills = []
        for index in range(3):
            spill = tmp_path / f"shard-{index}.jsonl"
            assert main(
                [
                    "shard",
                    "--shard-index", str(index),
                    "--shard-count", "3",
                    "--out", str(spill),
                    *self.SWEEP,
                    *extra,
                ]
            ) == 0
            spills.append(spill)
        return spills

    def test_merge_reproduces_the_single_machine_spill(self, capsys, tmp_path):
        single = tmp_path / "single.jsonl"
        assert main(["sweep", *self.SWEEP, "--stream", "--jsonl", str(single)]) == 0
        single_table = capsys.readouterr().out.splitlines()[:3]
        spills = self._shard_all(tmp_path)
        capsys.readouterr()
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", *map(str, spills), "--jsonl", str(merged)]) == 0
        merge_out = capsys.readouterr().out
        assert merged.read_bytes() == single.read_bytes()
        # The aggregate table equals the single-shot one, line for line.
        assert merge_out.splitlines()[:3] == single_table

    def test_shards_and_single_runs_share_the_cache(self, capsys, tmp_path):
        import json

        self._shard_all(tmp_path, "--cache", str(tmp_path / "cache"))
        stats = tmp_path / "stats.json"
        assert main(
            [
                "sweep", *self.SWEEP,
                "--cache", str(tmp_path / "cache"),
                "--stats-json", str(stats),
            ]
        ) == 0
        payload = json.loads(stats.read_text())
        assert payload["executed"] == 0
        assert payload["cache_hits"] == payload["total"] == 6

    def test_throughput_stats_json_replaces_the_grep_smoke(self, capsys, tmp_path):
        # The CI warm-cache assertion: parse `executed`, don't grep stdout.
        import json

        fast = [
            "throughput",
            "--transactions", "10",
            "--protocols", "two-phase-commit",
            "--cache", str(tmp_path / "cache"),
            "--stats-json", str(tmp_path / "stats.json"),
        ]
        assert main(fast) == 0
        cold = json.loads((tmp_path / "stats.json").read_text())
        assert (cold["executed"], cold["cache_hits"]) == (1, 0)
        assert main(fast) == 0
        warm = json.loads((tmp_path / "stats.json").read_text())
        assert (warm["executed"], warm["cache_hits"]) == (0, 1)
        assert warm["command"] == "throughput"

    def test_throughput_kind_shards_build_the_throughput_grid(self, capsys, tmp_path):
        spill = tmp_path / "tput-0.jsonl"
        assert main(
            [
                "shard",
                "--kind", "throughput",
                "--shard-index", "0",
                "--shard-count", "1",
                "--out", str(spill),
                "--protocols", "two-phase-commit",
                "--transactions", "10",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["merge", str(spill)]) == 0
        assert "goodput (/T)" in capsys.readouterr().out

    def test_incomplete_merge_names_the_missing_shard(self, capsys, tmp_path):
        spills = self._shard_all(tmp_path)
        capsys.readouterr()
        assert main(["merge", str(spills[0]), str(spills[2])]) == 2
        assert "missing shard(s) 1" in capsys.readouterr().err
        assert main(
            ["merge", str(spills[0]), str(spills[2]), "--allow-partial"]
        ) == 0

    def test_bad_shard_parameters_exit_2(self, capsys, tmp_path):
        out = str(tmp_path / "s.jsonl")
        base = ["shard", "--out", out, *self.SWEEP]
        assert main(base + ["--shard-index", "3", "--shard-count", "3"]) == 2
        assert "--shard-index" in capsys.readouterr().err
        assert main(base + ["--shard-index", "0", "--shard-count", "0"]) == 2
        assert "--shard-count" in capsys.readouterr().err
        assert main(
            base + ["--shard-index", "0", "--shard-count", "2", "--protocol", "nope"]
        ) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_flags_of_the_other_grid_kind_are_rejected(self, capsys, tmp_path):
        base = [
            "shard", "--shard-index", "0", "--shard-count", "2",
            "--out", str(tmp_path / "s.jsonl"),
        ]
        assert main(base + ["--protocols", "all"]) == 2
        assert "--protocols applies to --kind throughput" in capsys.readouterr().err
        assert main(base + ["--kind", "throughput", "--times", "0.5"]) == 2
        assert "--times applies to --kind sweep" in capsys.readouterr().err
        assert main(base + ["--kind", "throughput", "--protocol", "all"]) == 2
        assert "--protocol applies to --kind sweep" in capsys.readouterr().err
        # The open-loop flags are throughput-only too: a sweep shard must
        # not silently cover a different grid than the user asked for.
        assert main(base + ["--retries", "3", "--crash-schedule", "2:20:26"]) == 2
        err = capsys.readouterr().err
        assert "--retries, --crash-schedule apply to --kind throughput" in err
        assert main(base + ["--arrival", "poisson"]) == 2
        assert "--arrival applies to --kind throughput" in capsys.readouterr().err
        assert main(base + ["--lock-transport", "network"]) == 2
        assert "--lock-transport applies to --kind throughput" in capsys.readouterr().err

    def test_faults_flag_is_shared_by_every_shard_kind(self, capsys, tmp_path):
        # --faults is NOT kind-specific: a lossy-retransmit sweep shard and
        # a lossy modelcheck shard must both build.
        base = [
            "shard", "--shard-index", "0", "--shard-count", "1",
            "--out", str(tmp_path / "s.jsonl"),
        ]
        assert main(
            base
            + ["--times", "0.5", "--faults", "loss=0.2,retransmit=on,seed=7"]
        ) == 0
        capsys.readouterr()
        assert main(
            base
            + ["--kind", "modelcheck", "--protocol", "two-phase-commit",
               "--faults", "loss=0.5"]
        ) == 0


class TestResultLogCli:
    SWEEP = ["--protocol", "two-phase-commit", "--times", "0.5", "1.5"]

    def _log_all(self, log_dir, *extra):
        for index in range(3):
            assert main(
                [
                    "shard",
                    "--shard-index", str(index),
                    "--shard-count", "3",
                    "--log", str(log_dir),
                    *(extra or self.SWEEP),
                ]
            ) == 0

    def test_interrupted_merge_resumes_byte_identical(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        single = tmp_path / "single.jsonl"
        assert main(["sweep", *self.SWEEP, "--stream", "--jsonl", str(single)]) == 0
        self._log_all(tmp_path / "log")
        merged = tmp_path / "merged.jsonl"
        base = [
            "merge", "--log", str(tmp_path / "log"),
            "--jsonl", str(merged), "--batch-records", "2",
        ]
        monkeypatch.setenv("REPRO_MERGE_CRASH_AFTER", "3")
        capsys.readouterr()
        assert main(base) == 3
        assert "merge interrupted" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_MERGE_CRASH_AFTER")
        stats = tmp_path / "stats.json"
        assert main(base + ["--resume", "--stats-json", str(stats)]) == 0
        assert "replayed from checkpoint" in capsys.readouterr().out
        assert merged.read_bytes() == single.read_bytes()
        # The stats document matches an uninterrupted merge of the same
        # log (its own checkpoint + spill), modulo wall-clock time.
        fresh_stats = tmp_path / "fresh-stats.json"
        assert main(
            [
                "merge", "--log", str(tmp_path / "log"),
                "--jsonl", str(tmp_path / "fresh.jsonl"),
                "--checkpoint", str(tmp_path / "fresh.ckpt"),
                "--stats-json", str(fresh_stats),
            ]
        ) == 0
        resumed = json.loads(stats.read_text())
        uninterrupted = json.loads(fresh_stats.read_text())
        resumed.pop("elapsed")
        uninterrupted.pop("elapsed")
        assert resumed == uninterrupted
        assert (tmp_path / "fresh.jsonl").read_bytes() == single.read_bytes()

    def test_shard_rerun_resumes_from_the_log(self, capsys, tmp_path):
        self._log_all(tmp_path / "log")
        capsys.readouterr()
        assert main(
            [
                "shard", "--shard-index", "0", "--shard-count", "3",
                "--log", str(tmp_path / "log"), *self.SWEEP,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "0 of " in out
        assert "already sealed" in out

    def test_manifest_builds_a_mixed_kind_task_list(self, capsys, tmp_path):
        import json

        manifest = tmp_path / "grids.json"
        manifest.write_text(
            json.dumps(
                {
                    "grids": [
                        {"kind": "sweep", "args": self.SWEEP},
                        {
                            "kind": "throughput",
                            "args": [
                                "--protocols", "two-phase-commit",
                                "--transactions", "10",
                            ],
                        },
                    ]
                }
            )
        )
        for index in range(2):
            assert main(
                [
                    "shard",
                    "--shard-index", str(index),
                    "--shard-count", "2",
                    "--log", str(tmp_path / "log"),
                    "--manifest", str(manifest),
                ]
            ) == 0
        stats = tmp_path / "stats.json"
        capsys.readouterr()
        assert main(
            [
                "merge", "--log", str(tmp_path / "log"),
                "--stats-json", str(stats),
            ]
        ) == 0
        payload = json.loads(stats.read_text())
        assert payload["total_tasks"] == 7  # 6 sweep scenarios + 1 workload
        assert payload["kinds"] == ["scenario", "throughput"]

    def test_manifest_rejects_command_line_grid_flags(self, capsys, tmp_path):
        import json

        manifest = tmp_path / "grids.json"
        manifest.write_text(json.dumps({"grids": [{"kind": "sweep"}]}))
        assert main(
            [
                "shard", "--shard-index", "0", "--shard-count", "1",
                "--log", str(tmp_path / "log"),
                "--manifest", str(manifest),
                "--protocol", "all",
            ]
        ) == 2
        assert "cannot be combined with --manifest" in capsys.readouterr().err

    def test_manifest_entry_errors_name_the_entry(self, capsys, tmp_path):
        import json

        manifest = tmp_path / "grids.json"
        manifest.write_text(
            json.dumps({"grids": [{"kind": "sweep", "args": ["--protocol", "nope"]}]})
        )
        assert main(
            [
                "shard", "--shard-index", "0", "--shard-count", "1",
                "--log", str(tmp_path / "log"),
                "--manifest", str(manifest),
            ]
        ) == 2
        assert "grids[0]" in capsys.readouterr().err

    def test_source_flag_validation_exits_2(self, capsys, tmp_path):
        log = str(tmp_path / "log")
        out = str(tmp_path / "s.jsonl")
        base = ["shard", "--shard-index", "0", "--shard-count", "1", *self.SWEEP]
        assert main(base + ["--out", out, "--log", log]) == 2
        assert "exactly one of --out" in capsys.readouterr().err
        assert main(base) == 2
        assert "exactly one of --out" in capsys.readouterr().err
        assert main(base + ["--out", out, "--segment-records", "8"]) == 2
        assert "--segment-records applies to --log" in capsys.readouterr().err
        assert main(["merge"]) == 2
        assert "exactly one source" in capsys.readouterr().err
        assert main(["merge", out, "--log", log]) == 2
        assert "exactly one source" in capsys.readouterr().err
        assert main(["merge", out, "--resume"]) == 2
        assert "--resume applies to --log" in capsys.readouterr().err
        assert main(["merge", "--log", log, "--batch-records", "0"]) == 2
        assert "--batch-records must be >= 1" in capsys.readouterr().err


class TestFaultsCli:
    SWEEP = ["sweep", "--protocol", "two-phase-commit", "--times", "0.5"]

    def test_sweep_accepts_the_clause_grammar(self, capsys):
        assert main(self.SWEEP + ["--faults", "loss=0.3,retransmit=on"]) == 0
        assert "resilient" in capsys.readouterr().out

    def test_bad_clause_names_the_clause_and_exits_2(self, capsys):
        assert main(self.SWEEP + ["--faults", "loss=not-a-number"]) == 2
        err = capsys.readouterr().err
        assert "--faults" in err
        assert "clause 'loss=not-a-number'" in err
        assert main(self.SWEEP + ["--faults", "warp=1"]) == 2
        assert "clause 'warp=1'" in capsys.readouterr().err

    def test_plan_is_validated_against_the_site_count(self, capsys):
        assert main(self.SWEEP + ["--faults", "byzantine=9"]) == 2
        assert "site" in capsys.readouterr().err

    def test_crash_schedule_warns_but_still_works(self, capsys):
        assert main(
            [
                "throughput",
                "--transactions", "5",
                "--protocols", "two-phase-commit",
                "--crash-schedule", "2:20:26",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "--faults crash=SITE:AT[:RECOVER_AT]" in captured.err
        assert "goodput (/T)" in captured.out

    def test_modelcheck_maps_clauses_onto_envelopes(self, capsys):
        assert main(
            [
                "modelcheck",
                "--protocol", "two-phase-commit",
                "--faults", "loss=0.5",
                "--faults", "loss=0.5,retransmit=on",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "lossy" in output
        assert "lossy-retransmit" in output

    def test_modelcheck_rejects_unmapped_fault_classes(self, capsys):
        assert main(
            ["modelcheck", "--protocol", "two-phase-commit", "--faults", "dup=0.5"]
        ) == 2
        err = capsys.readouterr().err
        assert "no exhaustive envelope" in err
        assert "duplicate" in err

    def test_merging_a_non_spill_file_exits_2(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not json\n")
        assert main(["merge", str(bogus)]) == 2
        assert "merge failed" in capsys.readouterr().err

    def test_merging_an_unregistered_kind_exits_2(self, capsys, tmp_path):
        # A spill from a machine with an extra spec kind registered must
        # fail cleanly here, not with an UnknownSpecKindError traceback.
        import json

        spill = tmp_path / "alien.jsonl"
        header = {
            "kind": "shard-header", "format": 1, "shard_index": 0,
            "shard_count": 1, "total_tasks": 1, "shard_tasks": 1,
            "spec_kinds": ["alien"],
        }
        record = {"index": 0, "summary": {"kind": "alien-kind"}}
        spill.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
        assert main(["merge", str(spill)]) == 2
        err = capsys.readouterr().err
        assert "merge failed" in err
        assert "alien-kind" in err


class TestBoundariesCli:
    def test_locates_the_commit_point_flip(self, capsys):
        assert main(
            [
                "boundaries",
                "--protocol",
                "terminating-three-phase-commit",
                "--lo",
                "2.5",
                "--hi",
                "3.5",
                "--resolution",
                "0.05",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "consistent:abort" in output
        assert "consistent:commit" in output
        assert "of uniform cost" in output

    def test_flat_interval_reports_no_flips(self, capsys):
        assert main(
            ["boundaries", "--protocol", "two-phase-commit", "--lo", "1.0", "--hi", "2.0"]
        ) == 0
        assert "no verdict flips" in capsys.readouterr().out

    def test_single_site_has_no_lines_and_does_not_crash(self, capsys):
        assert main(["boundaries", "--sites", "1", "--lo", "0.5", "--hi", "1.0"]) == 0
        assert "no partition lines" in capsys.readouterr().out

    def test_bad_parameters_exit_2(self, capsys):
        assert main(["boundaries", "--lo", "2.0", "--hi", "1.0"]) == 2
        assert "--lo < --hi" in capsys.readouterr().err
        assert main(["boundaries", "--coarse-step", "0"]) == 2
        assert "--coarse-step" in capsys.readouterr().err
        assert main(["boundaries", "--resolution", "0"]) == 2
        assert "--resolution" in capsys.readouterr().err
        assert main(["boundaries", "--protocol", "nope"]) == 2
        assert "unknown protocol" in capsys.readouterr().err


class TestThreeWaySplits:
    def test_requires_three_sites(self):
        with pytest.raises(ValueError):
            three_way_splits(2)

    def test_splits_are_multiple_partitions(self):
        for spec in three_way_splits(4):
            assert spec.is_multiple
            assert spec.sites == frozenset({1, 2, 3, 4})

    def test_three_sites_fully_isolated_split_present(self):
        splits = three_way_splits(3)
        assert any(len(spec.groups) == 3 and all(len(g) == 1 for g in spec.groups) for spec in splits)


class TestMultiplePartitioningExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_multiple_partitioning(times=[1.5, 2.5, 3.5])

    def test_impossibility_reproduced(self, report):
        for summary in report.details.values():
            assert not summary.resilient

    def test_violations_rather_than_silent_divergence(self, report):
        summary = report.details["terminating-three-phase-commit"]
        assert summary.atomicity_violations > 0
        assert summary.violation_witnesses

    def test_report_has_one_row_per_protocol(self, report):
        assert len(report.rows()) == len(report.details)
