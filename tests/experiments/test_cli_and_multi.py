"""Tests for the CLI entry point and the multiple-partitioning experiment."""

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.experiments.multiple_partitioning import run_multiple_partitioning, three_way_splits


class TestCli:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "FIG1"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output
        assert "Two-phase commit" in output

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "lemma12"]) == 0
        assert "LEMMA12" in capsys.readouterr().out

    def test_run_multiple_ids(self, capsys):
        assert main(["run", "FIG1", "SEC7"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output
        assert "SEC7" in output

    def test_unknown_id_returns_error(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_id_has_a_callable(self):
        for experiment_id, runner in EXPERIMENTS.items():
            assert callable(runner), experiment_id


class TestThreeWaySplits:
    def test_requires_three_sites(self):
        with pytest.raises(ValueError):
            three_way_splits(2)

    def test_splits_are_multiple_partitions(self):
        for spec in three_way_splits(4):
            assert spec.is_multiple
            assert spec.sites == frozenset({1, 2, 3, 4})

    def test_three_sites_fully_isolated_split_present(self):
        splits = three_way_splits(3)
        assert any(len(spec.groups) == 3 and all(len(g) == 1 for g in spec.groups) for spec in splits)


class TestMultiplePartitioningExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_multiple_partitioning(times=[1.5, 2.5, 3.5])

    def test_impossibility_reproduced(self, report):
        for summary in report.details.values():
            assert not summary.resilient

    def test_violations_rather_than_silent_divergence(self, report):
        summary = report.details["terminating-three-phase-commit"]
        assert summary.atomicity_violations > 0
        assert summary.violation_witnesses

    def test_report_has_one_row_per_protocol(self, report):
        assert len(report.rows()) == len(report.details)
