"""Tests for the CLI entry point and the multiple-partitioning experiment."""

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.experiments.multiple_partitioning import run_multiple_partitioning, three_way_splits


class TestCli:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "FIG1"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output
        assert "Two-phase commit" in output

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "lemma12"]) == 0
        assert "LEMMA12" in capsys.readouterr().out

    def test_run_multiple_ids(self, capsys):
        assert main(["run", "FIG1", "SEC7"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output
        assert "SEC7" in output

    def test_unknown_id_returns_error(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_id_has_a_callable(self):
        for experiment_id, runner in EXPERIMENTS.items():
            assert callable(runner), experiment_id


class TestSweepCli:
    SWEEP = ["sweep", "--protocol", "two-phase-commit", "--times", "0.5", "1.5"]

    def test_stream_prints_the_same_verdict_table(self, capsys):
        assert main(self.SWEEP) == 0
        materialized = capsys.readouterr().out
        assert main(self.SWEEP + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        # Same table; only the stats footer may differ.
        assert materialized.splitlines()[:3] == streamed.splitlines()[:3]

    def test_stream_spills_jsonl(self, capsys, tmp_path):
        from repro.engine import read_jsonl

        spill = tmp_path / "spill.jsonl"
        assert main(self.SWEEP + ["--stream", "--jsonl", str(spill)]) == 0
        assert "spilled" in capsys.readouterr().out
        assert sum(1 for _ in read_jsonl(spill)) == 6  # 2 onsets x 3 splits

    def test_stats_line_reports_cache_effectiveness(self, capsys, tmp_path):
        cached = self.SWEEP + ["--cache", str(tmp_path)]
        assert main(cached) == 0
        assert "cache: 0 hit(s) / 6 miss(es)" in capsys.readouterr().out
        assert main(cached) == 0
        assert "cache: 6 hit(s) / 0 miss(es)" in capsys.readouterr().out

    def test_jsonl_requires_stream(self, capsys):
        assert main(self.SWEEP + ["--jsonl", "x.jsonl"]) == 2
        assert "--jsonl requires --stream" in capsys.readouterr().err

    def test_refine_conflicts_with_stream(self, capsys):
        assert main(self.SWEEP + ["--refine", "--stream"]) == 2
        assert "--refine cannot be combined" in capsys.readouterr().err


class TestBoundariesCli:
    def test_locates_the_commit_point_flip(self, capsys):
        assert main(
            [
                "boundaries",
                "--protocol",
                "terminating-three-phase-commit",
                "--lo",
                "2.5",
                "--hi",
                "3.5",
                "--resolution",
                "0.05",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "consistent:abort" in output
        assert "consistent:commit" in output
        assert "of uniform cost" in output

    def test_flat_interval_reports_no_flips(self, capsys):
        assert main(
            ["boundaries", "--protocol", "two-phase-commit", "--lo", "1.0", "--hi", "2.0"]
        ) == 0
        assert "no verdict flips" in capsys.readouterr().out

    def test_single_site_has_no_lines_and_does_not_crash(self, capsys):
        assert main(["boundaries", "--sites", "1", "--lo", "0.5", "--hi", "1.0"]) == 0
        assert "no partition lines" in capsys.readouterr().out

    def test_bad_parameters_exit_2(self, capsys):
        assert main(["boundaries", "--lo", "2.0", "--hi", "1.0"]) == 2
        assert "--lo < --hi" in capsys.readouterr().err
        assert main(["boundaries", "--coarse-step", "0"]) == 2
        assert "--coarse-step" in capsys.readouterr().err
        assert main(["boundaries", "--resolution", "0"]) == 2
        assert "--resolution" in capsys.readouterr().err
        assert main(["boundaries", "--protocol", "nope"]) == 2
        assert "unknown protocol" in capsys.readouterr().err


class TestThreeWaySplits:
    def test_requires_three_sites(self):
        with pytest.raises(ValueError):
            three_way_splits(2)

    def test_splits_are_multiple_partitions(self):
        for spec in three_way_splits(4):
            assert spec.is_multiple
            assert spec.sites == frozenset({1, 2, 3, 4})

    def test_three_sites_fully_isolated_split_present(self):
        splits = three_way_splits(3)
        assert any(len(spec.groups) == 3 and all(len(g) == 1 for g in spec.groups) for spec in splits)


class TestMultiplePartitioningExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_multiple_partitioning(times=[1.5, 2.5, 3.5])

    def test_impossibility_reproduced(self, report):
        for summary in report.details.values():
            assert not summary.resilient

    def test_violations_rather_than_silent_divergence(self, report):
        summary = report.details["terminating-three-phase-commit"]
        assert summary.atomicity_violations > 0
        assert summary.violation_witnesses

    def test_report_has_one_row_per_protocol(self, report):
        assert len(report.rows()) == len(report.details)
