"""Integration tests: every experiment reproduces the paper's qualitative shape.

These are the end-to-end checks of the reproduction -- each test runs one of
the experiment modules (with reduced sweep sizes where the full bench would
be slow) and asserts the fact the paper claims for that figure or section.
"""

import math

import pytest

from repro import experiments as ex
from repro.core.transient import PartitionCase


QUICK_TIMES = [0.5, 1.5, 2.25, 2.5, 3.25, 3.75, 4.5]


class TestFig1:
    @pytest.fixture(scope="class")
    def report(self):
        return ex.run_fig1_two_phase()

    def test_failure_free_commit_and_abort(self, report):
        assert report.details["commit_run"].all_committed
        assert report.details["abort_run"].all_aborted

    def test_master_silence_blocks_all_slaves(self, report):
        assert set(report.details["crash_run"].blocked_sites) >= {2, 3}

    def test_partition_blocks_separated_slaves(self, report):
        assert report.details["partition_run"].blocked

    def test_report_has_four_rows(self, report):
        assert len(report.rows()) == 4
        assert "FIG1" in report.format()


class TestFig2:
    @pytest.fixture(scope="class")
    def report(self):
        return ex.run_fig2_extended_two_phase()

    def test_two_site_resilience(self, report):
        assert report.details["two_site"].resilient

    def test_three_site_failure(self, report):
        assert report.details["three_site"].atomicity_violations > 0

    def test_augmentation_table_includes_slave_wait(self, report):
        states = {row["local state"] for row in report.rows()}
        assert "slave:w" in states


class TestFig3:
    @pytest.fixture(scope="class")
    def report(self):
        return ex.run_fig3_three_phase()

    def test_three_phase_slower_than_two_phase(self, report):
        assert (
            report.details["commit_run"].max_decision_latency()
            > report.details["two_phase_run"].max_decision_latency()
        )

    def test_three_phase_satisfies_lemmas_while_two_phase_does_not(self, report):
        assert report.details["lemma_3pc"].satisfies_both
        assert not report.details["lemma_2pc"].satisfies_both

    def test_partitions_block_but_never_violate(self, report):
        summary = report.details["partition_summary"]
        assert summary.blocked_runs > 0
        assert summary.atomicity_violations == 0


class TestSec3AndLemmas:
    def test_sec3_counterexamples(self):
        report = ex.run_sec3_counterexamples()
        assert report.details["extended_summary"].atomicity_violations > 0
        assert report.details["naive_summary"].atomicity_violations > 0
        assert report.details["naive_witness"].atomicity_violated
        assert report.details["extended_witness"].atomicity_violated

    def test_lemma_checks(self):
        report = ex.run_lemma_checks()
        verdicts = report.details["reports"]
        assert not verdicts["two-phase-commit"].satisfies_both
        assert verdicts["three-phase-commit"].satisfies_both
        assert verdicts["quorum-commit"].satisfies_both

    def test_lemma3_sweep(self):
        report = ex.run_lemma3_sweep()
        summaries = report.details["summaries"]
        assert not summaries["extended-two-phase-commit"].resilient
        assert not summaries["naive-extended-three-phase-commit"].resilient
        assert summaries["terminating-three-phase-commit"].resilient


class TestTheorem9:
    def test_termination_sweep_is_resilient(self):
        summary = ex.run_termination_sweep(3, times=QUICK_TIMES)
        assert summary.resilient
        assert summary.total_runs == len(QUICK_TIMES) * 3

    def test_fig8_report_across_sizes(self):
        report = ex.run_fig8_termination(site_counts=(3, 4))
        for row in report.rows():
            assert row["atomicity violations"] == 0
            assert row["blocked runs"] == 0
            assert row["resilient"] == "yes"


class TestTimingExperiments:
    def test_fig5_within_bounds(self):
        report = ex.run_fig5_timeouts(site_counts=(3, 4))
        assert all(m.within_bound for m in report.details["measurements"])

    def test_fig6_probe_window_within_five_t(self):
        report = ex.run_fig6_probe_window(times=QUICK_TIMES)
        assert report.details["measurement"].within_bound
        assert report.details["windows"] > 0

    def test_fig7_wait_in_w_within_six_t(self):
        report = ex.run_fig7_wait_in_w(times=QUICK_TIMES)
        assert report.details["measurement"].within_bound
        assert report.details["samples"] > 0

    def test_fig9_wait_in_p_within_five_t(self):
        report = ex.run_fig9_wait_in_p(times=QUICK_TIMES)
        assert report.details["measurement"].within_bound
        assert report.details["samples"] > 0
        assert report.details["blocked"] == 0


class TestSec6:
    @pytest.fixture(scope="class")
    def report(self):
        return ex.run_sec6_cases()

    def test_every_case_represented(self, report):
        assert len(report.rows()) == len(PartitionCase)

    def test_constructions_classify_as_intended(self, report):
        for row in report.rows():
            assert row["case"] == row["classified as"]

    def test_only_3222_blocks_section5_protocol(self, report):
        blocking = [row["case"] for row in report.rows() if row["Section 5 protocol"] == "blocks"]
        assert blocking == ["3.2.2.2"]

    def test_section6_rule_fixes_3222(self, report):
        for row in report.rows():
            assert row["with Section 6 rule"] == "consistent"

    def test_unbounded_case_measured_as_infinite(self, report):
        assert math.isinf(report.details["3.2.2.2"]["measured"])


class TestSec7AndThm10:
    def test_sec7_counterexamples_violate(self):
        report = ex.run_sec7_assumptions()
        assert report.details["scenario1"].atomicity_violated
        assert report.details["scenario2"].atomicity_violated
        lost = report.details["lost_messages"]
        assert lost.atomicity_violated or lost.blocked

    def test_thm10_generalization(self):
        report = ex.run_thm10_generalization()
        conditions = report.details["conditions"]
        assert not conditions["two-phase-commit"].applicable
        assert conditions["three-phase-commit"].applicable
        assert conditions["quorum-commit"].applicable
        assert report.details["quorum_sweep"].resilient


class TestAvailabilityAndMessages:
    def test_availability_ranking(self):
        report = ex.run_availability_comparison(times=QUICK_TIMES)
        details = report.details
        blocking = {name: info["blocking"].blocking_rate for name, info in details.items()}
        assert blocking["three-phase-commit"] > 0.5
        assert blocking["two-phase-commit"] > 0.0
        assert blocking["terminating-three-phase-commit"] == 0.0
        atomicity = {name: info["atomicity"] for name, info in details.items()}
        assert atomicity["terminating-three-phase-commit"].resilient
        assert not atomicity["naive-extended-three-phase-commit"].resilient

    def test_terminating_protocol_holds_locks_for_less_time_than_blocking_ones(self):
        report = ex.run_availability_comparison(times=QUICK_TIMES)
        details = report.details
        terminating = details["terminating-three-phase-commit"]["blocking"].mean_lock_hold_time
        blocking_3pc = details["three-phase-commit"]["blocking"].mean_lock_hold_time
        assert terminating < blocking_3pc

    def test_message_overhead_shape(self):
        report = ex.run_message_overhead()
        rows = {row["protocol"]: row for row in report.rows()}
        assert (
            rows["three-phase-commit"]["messages (failure-free)"]
            > rows["two-phase-commit"]["messages (failure-free)"]
        )
        assert (
            rows["terminating-three-phase-commit"]["messages (failure-free)"]
            == rows["three-phase-commit"]["messages (failure-free)"]
        )


class TestReportFormatting:
    def test_every_report_formats_to_text(self):
        reports = [
            ex.run_fig1_two_phase(),
            ex.run_lemma_checks(),
            ex.run_sec7_assumptions(),
        ]
        for report in reports:
            text = report.format()
            assert report.experiment in text
            assert report.title in text
            assert str(report) == text
