"""The FAULTS experiment: fault-class survival, pinned and cross-checked.

Pins the paper-level story of the retransmission layer -- raw message loss
costs the blocking protocols termination and the timeout-driven variants
atomicity, retransmission restores assumption 1 and every delivery-fault
row recovers, while the equivocating master stays broken in both columns.
The embedded checker cross-validation doubles as the differential test
required by the PR: the exhaustive model checker and the simulator must
agree (directionally) on fault-class survival at ``n = 3``.
"""

import pytest

from repro.experiments.faults import (
    DEFAULT_SEEDS,
    fault_class_plans,
    fault_survival_tasks,
    run_fault_survival,
)
from repro.protocols.registry import available_protocols

#: The protocols the paper calls blocking under lost messages: a dropped
#: vote or decision leaves at least one site waiting forever.
BLOCKING = ("two-phase-commit", "three-phase-commit", "quorum-commit")


@pytest.fixture(scope="module")
def report():
    """One full FAULTS run shared by every assertion in the module."""
    return run_fault_survival()


def _cell(report, protocol, fault):
    for row in report.table:
        if row["protocol"] == protocol and row["fault"] == fault:
            return row
    pytest.fail(f"no survival row for ({protocol}, {fault})")


class TestSurvivalMatrix:
    def test_matrix_covers_every_protocol_and_fault_class(self, report):
        protocols = {row["protocol"] for row in report.table}
        faults = {row["fault"] for row in report.table}
        assert protocols == set(available_protocols())
        assert faults == {label for label, _ in fault_class_plans()}
        assert len(report.table) == len(protocols) * len(faults)

    @pytest.mark.parametrize("protocol", BLOCKING)
    def test_blocking_protocols_block_under_raw_loss(self, report, protocol):
        row = _cell(report, protocol, "loss")
        assert "blocks" in row["without retransmit"]

    @pytest.mark.parametrize("protocol", BLOCKING)
    def test_retransmission_restores_the_blocking_protocols(self, report, protocol):
        row = _cell(report, protocol, "loss")
        assert row["with retransmit"] == "survives"

    def test_every_loss_casualty_recovers_with_retransmission(self, report):
        lost = report.details["lost_under_raw_loss"]
        recovered = report.details["recovered_with_retransmit"]
        assert set(BLOCKING) <= set(lost)
        assert recovered == lost

    def test_duplication_and_reordering_are_absorbed(self, report):
        # The FSAs are idempotent under repeated commands and the
        # termination timers already budget for the reorder window.
        for protocol in available_protocols():
            for fault in ("duplicate", "reorder"):
                row = _cell(report, protocol, fault)
                assert row["without retransmit"] == "survives", (protocol, fault)
                assert row["with retransmit"] == "survives", (protocol, fault)

    def test_retransmission_does_not_repair_the_equivocating_master(self, report):
        # Delivery, not honesty: the Byzantine row must stay broken with
        # the layer on, for every protocol it breaks with the layer off.
        broken = report.details["byzantine_broken_despite_retransmit"]
        assert len(broken) >= len(available_protocols()) - 1
        for protocol in broken:
            row = _cell(report, protocol, "byzantine")
            assert row["without retransmit"] != "survives"
            assert row["with retransmit"] != "survives"


class TestCheckerAgreement:
    """The differential test: exhaustive checker vs. simulator at n=3."""

    def test_no_directional_disagreements(self, report):
        assert report.details["checker_disagreements"] == []

    def test_lossy_retransmit_envelope_proves_every_invariant(self, report):
        from repro.core.reachability import LOSSY_RETRANSMIT

        for (protocol, fault), violated in report.details[
            "checker_verdicts"
        ].items():
            if fault == LOSSY_RETRANSMIT:
                assert violated == frozenset(), protocol

    def test_headline_reports_zero_disagreements(self, report):
        assert "0 disagreement(s)" in report.headline


class TestTaskEnumeration:
    def test_spans_tile_the_task_list(self):
        tasks, spans = fault_survival_tasks(["two-phase-commit"])
        covered = []
        for _, _, _, start, end in spans:
            assert end - start == len(DEFAULT_SEEDS)
            covered.extend(range(start, end))
        assert covered == list(range(len(tasks)))

    def test_plans_are_reseeded_per_scenario_seed(self):
        # The fault RNG is driven by the plan seed, so every scenario seed
        # must carry its own plan realization.
        tasks, _ = fault_survival_tasks(["two-phase-commit"], seeds=(0, 1))
        seeds = {task.spec.faults.seed for task in tasks}
        assert seeds == {0, 1}
