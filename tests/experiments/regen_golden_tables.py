"""Regenerate ``golden_tables.json`` for test_golden_tables.py.

Run only when an experiment's numbers change *on purpose*::

    PYTHONPATH=src python tests/experiments/regen_golden_tables.py

The invocations must stay in lockstep with ``RUNS`` in
``test_golden_tables.py`` -- it imports this module's table.
"""

import json
import pathlib

from repro import experiments as ex

QUICK_TIMES = [0.5, 1.5, 2.25, 2.5, 3.25, 3.75, 4.5]

RUNS = {
    "FIG1": lambda: ex.run_fig1_two_phase(),
    "FIG2": lambda: ex.run_fig2_extended_two_phase(),
    "FIG3": lambda: ex.run_fig3_three_phase(),
    "FIG5": lambda: ex.run_fig5_timeouts(site_counts=(3, 4)),
    "FIG6": lambda: ex.run_fig6_probe_window(times=QUICK_TIMES),
    "FIG7": lambda: ex.run_fig7_wait_in_w(times=QUICK_TIMES),
    "FIG8": lambda: ex.run_fig8_termination(site_counts=(3,)),
    "FIG9": lambda: ex.run_fig9_wait_in_p(times=QUICK_TIMES),
}


def main() -> None:
    golden = {}
    for name, fn in RUNS.items():
        report = fn()
        golden[name] = {
            "experiment": report.experiment,
            "title": report.title,
            "headline": report.headline,
            "table": report.table,
        }
    path = pathlib.Path(__file__).parent / "golden_tables.json"
    path.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {path} ({len(golden)} figures)")


if __name__ == "__main__":
    main()
