"""Golden-table regression tests for the figure experiments.

``golden_tables.json`` was captured from the pre-engine (sequential)
implementation of every figure experiment; these tests pin the reproduced
numbers -- every table row and every headline -- so rewiring the harness
onto the parallel sweep engine provably changed no reproduced result.

If an experiment's *numbers* legitimately change (e.g. a protocol fix), the
goldens must be regenerated deliberately::

    PYTHONPATH=src python tests/experiments/regen_golden_tables.py
"""

import json
import pathlib

import pytest

from repro import experiments as ex

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_tables.json"

QUICK_TIMES = [0.5, 1.5, 2.25, 2.5, 3.25, 3.75, 4.5]

# The exact invocations the goldens were captured with (reduced sweep sizes,
# same as the integration tests, so the suite stays fast).
RUNS = {
    "FIG1": lambda: ex.run_fig1_two_phase(),
    "FIG2": lambda: ex.run_fig2_extended_two_phase(),
    "FIG3": lambda: ex.run_fig3_three_phase(),
    "FIG5": lambda: ex.run_fig5_timeouts(site_counts=(3, 4)),
    "FIG6": lambda: ex.run_fig6_probe_window(times=QUICK_TIMES),
    "FIG7": lambda: ex.run_fig7_wait_in_w(times=QUICK_TIMES),
    "FIG8": lambda: ex.run_fig8_termination(site_counts=(3,)),
    "FIG9": lambda: ex.run_fig9_wait_in_p(times=QUICK_TIMES),
}


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("figure", sorted(RUNS))
def test_figure_matches_golden(figure, goldens):
    golden = goldens[figure]
    report = RUNS[figure]()
    assert report.experiment == golden["experiment"]
    assert report.title == golden["title"]
    assert report.headline == golden["headline"]
    assert report.table == golden["table"]


def test_goldens_cover_fig1_through_fig9(goldens):
    assert sorted(goldens) == sorted(RUNS)
    for figure, golden in goldens.items():
        assert golden["table"], f"{figure} golden has an empty table"
        assert golden["headline"], f"{figure} golden has an empty headline"
