"""Every example script must run cleanly end to end."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_without_error(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_quickstart_reports_consistency(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "consistent" in output
    assert "ATOMICITY VIOLATED" not in output


def test_banking_demo_shows_violation_and_fix(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "banking_partition_demo.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "ATOMICITY VIOLATED" in output
    assert "termination protocol" in output


def test_transient_timeline_mentions_both_outcomes(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "transient_partition_timeline.py"), run_name="__main__"
    )
    output = capsys.readouterr().out
    assert "blocked" in output
    assert "commits at" in output
