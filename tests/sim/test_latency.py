"""Tests for latency models."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.latency import ConstantLatency, PerLinkLatency, UniformLatency


class TestConstantLatency:
    def test_sample_equals_delay(self):
        model = ConstantLatency(2.5)
        assert model.sample(random.Random(0), 1, 2) == 2.5

    def test_upper_bound_equals_delay(self):
        assert ConstantLatency(3.0).upper_bound == 3.0

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_default_is_unit_delay(self):
        assert ConstantLatency().upper_bound == 1.0


class TestUniformLatency:
    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            UniformLatency(0.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)

    def test_bounds_exposed(self):
        model = UniformLatency(0.5, 2.0)
        assert model.lower_bound == 0.5
        assert model.upper_bound == 2.0

    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_samples_within_bounds(self, seed):
        model = UniformLatency(0.25, 1.0)
        rng = random.Random(seed)
        sample = model.sample(rng, 1, 2)
        assert 0.25 <= sample <= 1.0

    def test_deterministic_given_rng_state(self):
        model = UniformLatency(0.1, 1.0)
        assert model.sample(random.Random(7), 1, 2) == model.sample(random.Random(7), 1, 2)


class TestPerLinkLatency:
    def test_override_applies_to_named_link_only(self):
        model = PerLinkLatency(1.0, {(1, 3): 0.2})
        rng = random.Random(0)
        assert model.sample(rng, 1, 3) == 0.2
        assert model.sample(rng, 3, 1) == 1.0
        assert model.sample(rng, 1, 2) == 1.0

    def test_upper_bound_is_max_of_default_and_overrides(self):
        model = PerLinkLatency(1.0, {(1, 2): 3.0})
        assert model.upper_bound == 3.0

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            PerLinkLatency(0.0, {})
        with pytest.raises(ValueError):
            PerLinkLatency(1.0, {(1, 2): -0.5})
