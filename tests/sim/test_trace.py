"""Tests for the trace container."""

from repro.sim.trace import Trace


def build_trace():
    trace = Trace()
    trace.record(0.0, "send", site=1, destination=2, payload="xact")
    trace.record(1.0, "deliver", site=2, source=1, payload="xact")
    trace.record(1.0, "transition", site=2, state="w")
    trace.record(2.0, "timeout", site=2, timer="vote")
    trace.record(3.0, "decision", site=2, outcome="abort")
    return trace


class TestTrace:
    def test_len_counts_records(self):
        assert len(build_trace()) == 5

    def test_filter_by_category(self):
        trace = build_trace()
        assert len(trace.filter("send")) == 1
        assert len(trace.filter("deliver")) == 1

    def test_filter_by_site(self):
        trace = build_trace()
        assert len(trace.filter(site=2)) == 4

    def test_filter_with_predicate(self):
        trace = build_trace()
        late = trace.filter(predicate=lambda r: r.time >= 2.0)
        assert [r.category for r in late] == ["timeout", "decision"]

    def test_first_and_last(self):
        trace = build_trace()
        assert trace.first("transition").get("state") == "w"
        assert trace.last("decision").get("outcome") == "abort"
        assert trace.first("nonexistent") is None
        assert trace.last("nonexistent") is None

    def test_count_with_detail_match(self):
        trace = build_trace()
        assert trace.count("decision", outcome="abort") == 1
        assert trace.count("decision", outcome="commit") == 0

    def test_categories(self):
        assert build_trace().categories() == {
            "send",
            "deliver",
            "transition",
            "timeout",
            "decision",
        }

    def test_record_returns_entry(self):
        trace = Trace()
        entry = trace.record(1.5, "send", site=3, payload="yes")
        assert entry.time == 1.5
        assert entry.site == 3
        assert entry.get("payload") == "yes"
        assert entry.get("missing", "default") == "default"

    def test_iteration_preserves_order(self):
        trace = build_trace()
        times = [record.time for record in trace]
        assert times == sorted(times)

    def test_merge_combines_and_sorts(self):
        a = Trace()
        a.record(2.0, "send", site=1)
        b = Trace()
        b.record(1.0, "deliver", site=2)
        merged = a.merge([b])
        assert [record.time for record in merged] == [1.0, 2.0]
        # originals untouched
        assert len(a) == 1
        assert len(b) == 1

    def test_records_returns_tuple_snapshot(self):
        trace = build_trace()
        snapshot = trace.records()
        assert isinstance(snapshot, tuple)
        assert len(snapshot) == 5
