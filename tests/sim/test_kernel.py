"""Tests for the discrete-event kernel and clock."""

import pytest

from repro.sim.clock import Clock
from repro.sim.events import EventKind
from repro.sim.kernel import SimulationError, Simulator


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advances_forward(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_refuses_to_go_backwards(self):
        clock = Clock(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_is_allowed(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0


class TestScheduling:
    def test_schedule_runs_action_at_correct_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(2.0, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in ["a", "b", "c", "d"]:
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_priority_breaks_ties_before_sequence(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=5)
        sim.schedule(1.0, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_event_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestRun:
    def test_run_until_horizon_leaves_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1.0))
        sim.schedule(10.0, lambda: fired.append(10.0))
        sim.run(until=5.0)
        assert fired == [1.0]
        assert sim.now == 5.0
        assert sim.pending() == 1

    def test_run_until_advances_clock_to_horizon(self):
        sim = Simulator()
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        assert sim.run() == 2.0

    def test_stop_halts_execution(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.1, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_executes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        event = sim.step()
        assert fired == ["a"]
        assert event is not None and event.time == 1.0

    def test_step_on_empty_queue_returns_none(self):
        assert Simulator().step() is None

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_run_until_quiescent_drains_queue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(2))
        sim.run_until_quiescent()
        assert fired == [1, 2]
        assert sim.pending() == 0


class TestDeterminism:
    def test_same_seed_same_random_sequence(self):
        a = Simulator(seed=42)
        b = Simulator(seed=42)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_different_seed_different_sequence(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert [a.rng.random() for _ in range(5)] != [b.rng.random() for _ in range(5)]

    def test_event_kind_default(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert event.kind is EventKind.GENERIC
