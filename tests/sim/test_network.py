"""Tests for the partitionable network and nodes."""

from repro.sim.cluster import Cluster
from repro.sim.latency import ConstantLatency, PerLinkLatency
from repro.sim.network import Undeliverable
from repro.sim.node import is_undeliverable
from repro.sim.partition import PartitionSchedule, PartitionSpec


class RecordingRole:
    """Minimal role that records everything delivered to it."""

    def __init__(self, node):
        self.node = node
        self.messages = []
        self.timeouts = []
        self.started = False
        node.attach(self)

    def on_start(self):
        self.started = True

    def on_message(self, payload, envelope):
        self.messages.append((self.node.sim.now, payload))

    def on_timeout(self, timer):
        self.timeouts.append((self.node.sim.now, timer.name))


def make_cluster(n=3, latency=None, model="optimistic"):
    cluster = Cluster(n, latency=latency or ConstantLatency(1.0), model=model)
    roles = {site: RecordingRole(cluster.node(site)) for site in cluster.site_ids()}
    return cluster, roles


class TestDelivery:
    def test_message_arrives_after_latency(self):
        cluster, roles = make_cluster(2, latency=ConstantLatency(2.0))
        cluster.node(1).send(2, "hello")
        cluster.run()
        assert roles[2].messages == [(2.0, "hello")]

    def test_multicast_reaches_every_destination(self):
        cluster, roles = make_cluster(4)
        cluster.node(1).multicast([2, 3, 4], "prepare")
        cluster.run()
        for site in (2, 3, 4):
            assert roles[site].messages == [(1.0, "prepare")]

    def test_per_link_latency_orders_deliveries(self):
        latency = PerLinkLatency(1.0, {(1, 3): 0.25})
        cluster, roles = make_cluster(3, latency=latency)
        cluster.node(1).send(2, "slow")
        cluster.node(1).send(3, "fast")
        cluster.run()
        assert roles[3].messages[0][0] == 0.25
        assert roles[2].messages[0][0] == 1.0

    def test_statistics_track_sends_and_deliveries(self):
        cluster, _ = make_cluster(3)
        cluster.node(1).multicast([2, 3], "x")
        cluster.run()
        assert cluster.network.messages_sent == 2
        assert cluster.network.messages_delivered == 2
        assert cluster.network.messages_bounced == 0

    def test_in_flight_counter(self):
        cluster, _ = make_cluster(2)
        cluster.node(1).send(2, "x")
        assert cluster.network.in_flight == 1
        cluster.run()
        assert cluster.network.in_flight == 0

    def test_trace_records_send_and_deliver(self):
        cluster, _ = make_cluster(2)
        cluster.node(1).send(2, "ping")
        cluster.run()
        assert cluster.trace.count("send") == 1
        assert cluster.trace.count("deliver") == 1


class TestOptimisticPartitioning:
    def test_send_across_partition_bounces_to_sender(self):
        cluster, roles = make_cluster(3)
        cluster.partitions.apply(PartitionSpec.simple([1, 2], [3]))
        cluster.node(1).send(3, "prepare")
        cluster.run()
        assert roles[3].messages == []
        assert len(roles[1].messages) == 1
        _, payload = roles[1].messages[0]
        assert is_undeliverable(payload)
        assert payload.payload == "prepare"
        assert payload.intended_destination == 3

    def test_bounce_takes_a_propagation_delay(self):
        cluster, roles = make_cluster(2, latency=ConstantLatency(1.0))
        cluster.partitions.apply(PartitionSpec.simple([1], [2]))
        cluster.node(1).send(2, "x")
        cluster.run()
        time, _ = roles[1].messages[0]
        assert time == 1.0

    def test_in_flight_message_bounced_when_partition_cuts_it(self):
        cluster, roles = make_cluster(2, latency=ConstantLatency(2.0))
        cluster.apply_partition_schedule(PartitionSchedule.simple(1.0, [1], [2]))
        cluster.node(1).send(2, "commit")
        cluster.run()
        assert roles[2].messages == []
        assert len(roles[1].messages) == 1
        assert is_undeliverable(roles[1].messages[0][1])

    def test_in_flight_message_within_group_unaffected(self):
        cluster, roles = make_cluster(3, latency=ConstantLatency(2.0))
        cluster.apply_partition_schedule(PartitionSchedule.simple(1.0, [1, 2], [3]))
        cluster.node(1).send(2, "commit")
        cluster.run()
        assert roles[2].messages == [(2.0, "commit")]

    def test_messages_flow_again_after_heal(self):
        cluster, roles = make_cluster(2)
        cluster.apply_partition_schedule(PartitionSchedule.transient(0.0, 5.0, [1], [2]))
        cluster.sim.schedule_at(6.0, lambda: cluster.node(1).send(2, "late"))
        cluster.run()
        assert (7.0, "late") in roles[2].messages

    def test_partition_is_directionless(self):
        cluster, roles = make_cluster(2)
        cluster.partitions.apply(PartitionSpec.simple([1], [2]))
        cluster.node(2).send(1, "yes")
        cluster.run()
        assert roles[1].messages == []
        assert is_undeliverable(roles[2].messages[0][1])

    def test_bounce_counts_in_statistics(self):
        cluster, _ = make_cluster(2)
        cluster.partitions.apply(PartitionSpec.simple([1], [2]))
        cluster.node(1).send(2, "x")
        cluster.run()
        assert cluster.network.messages_bounced == 1
        assert cluster.network.messages_delivered == 0


class TestPessimisticPartitioning:
    def test_cross_partition_message_is_lost(self):
        cluster, roles = make_cluster(2, model="pessimistic")
        cluster.partitions.apply(PartitionSpec.simple([1], [2]))
        cluster.node(1).send(2, "x")
        cluster.run()
        assert roles[1].messages == []
        assert roles[2].messages == []
        assert cluster.network.messages_dropped == 1

    def test_in_flight_message_lost_on_partition(self):
        cluster, roles = make_cluster(2, model="pessimistic", latency=ConstantLatency(2.0))
        cluster.apply_partition_schedule(PartitionSchedule.simple(1.0, [1], [2]))
        cluster.node(1).send(2, "x")
        cluster.run()
        assert roles[1].messages == []
        assert roles[2].messages == []


class TestCrashes:
    def test_crashed_destination_drops_message(self):
        cluster, roles = make_cluster(2)
        cluster.node(2).crash()
        cluster.node(1).send(2, "x")
        cluster.run()
        assert roles[2].messages == []
        assert cluster.network.messages_dropped == 1

    def test_crashed_node_cannot_send(self):
        cluster, roles = make_cluster(2)
        cluster.node(1).crash()
        assert cluster.node(1).send(2, "x") is None
        cluster.run()
        assert roles[2].messages == []

    def test_recovered_node_receives_again(self):
        cluster, roles = make_cluster(2)
        cluster.node(2).crash()
        cluster.node(2).recover()
        cluster.node(1).send(2, "x")
        cluster.run()
        assert roles[2].messages == [(1.0, "x")]

    def test_crash_cancels_timers(self):
        cluster, roles = make_cluster(2)
        cluster.node(2).set_timer("t", 1.0)
        cluster.node(2).crash()
        cluster.run()
        assert roles[2].timeouts == []


class TestUndeliverableWrapper:
    def test_str_mentions_payload_and_destination(self):
        cluster, roles = make_cluster(2)
        cluster.partitions.apply(PartitionSpec.simple([1], [2]))
        cluster.node(1).send(2, "prepare")
        cluster.run()
        ud = roles[1].messages[0][1]
        assert isinstance(ud, Undeliverable)
        assert "prepare" in str(ud)
        assert "2" in str(ud)
