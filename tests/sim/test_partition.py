"""Tests for partition specifications, schedules and the manager."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.partition import (
    PartitionError,
    PartitionEvent,
    PartitionManager,
    PartitionSchedule,
    PartitionSpec,
)


class TestPartitionSpec:
    def test_simple_partition_has_two_groups(self):
        spec = PartitionSpec.simple([1, 2], [3])
        assert spec.is_simple
        assert not spec.is_multiple

    def test_three_groups_is_multiple(self):
        spec = PartitionSpec.of([1], [2], [3])
        assert spec.is_multiple
        assert not spec.is_simple

    def test_simple_constructor_rejects_more_groups(self):
        with pytest.raises(PartitionError):
            PartitionSpec.simple([1], [])

    def test_empty_group_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSpec.of([1, 2], [])

    def test_overlapping_groups_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSpec.of([1, 2], [2, 3])

    def test_no_groups_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSpec(())

    def test_separated_across_groups(self):
        spec = PartitionSpec.simple([1, 2], [3, 4])
        assert spec.separated(1, 3)
        assert spec.separated(4, 2)

    def test_not_separated_within_group(self):
        spec = PartitionSpec.simple([1, 2], [3, 4])
        assert not spec.separated(1, 2)
        assert not spec.separated(3, 4)

    def test_group_of(self):
        spec = PartitionSpec.simple([1, 2], [3])
        assert spec.group_of(1) == frozenset({1, 2})
        assert spec.group_of(3) == frozenset({3})
        assert spec.group_of(99) is None

    def test_master_and_remote_partition(self):
        spec = PartitionSpec.simple([1, 2], [3, 4])
        assert spec.master_partition(1) == frozenset({1, 2})
        assert spec.remote_partition(1) == frozenset({3, 4})

    def test_master_partition_unknown_master(self):
        spec = PartitionSpec.simple([1, 2], [3])
        with pytest.raises(PartitionError):
            spec.master_partition(9)

    def test_sites_union(self):
        spec = PartitionSpec.of([1, 2], [3], [4, 5])
        assert spec.sites == frozenset({1, 2, 3, 4, 5})

    def test_str_is_readable(self):
        spec = PartitionSpec.simple([2, 1], [3])
        assert "1,2" in str(spec)
        assert "3" in str(spec)

    @given(
        st.sets(st.integers(min_value=1, max_value=20), min_size=1, max_size=8),
        st.sets(st.integers(min_value=21, max_value=40), min_size=1, max_size=8),
    )
    def test_property_separation_is_symmetric(self, group_a, group_b):
        spec = PartitionSpec.simple(group_a, group_b)
        for a in group_a:
            for b in group_b:
                assert spec.separated(a, b)
                assert spec.separated(b, a)

    @given(
        st.sets(st.integers(min_value=1, max_value=30), min_size=2, max_size=10),
    )
    def test_property_same_group_never_separated(self, group):
        other = {100}
        spec = PartitionSpec.simple(group, other)
        members = sorted(group)
        for a in members:
            for b in members:
                assert not spec.separated(a, b)

    @given(
        st.sets(st.integers(min_value=1, max_value=10), min_size=1, max_size=5),
        st.sets(st.integers(min_value=11, max_value=20), min_size=1, max_size=5),
    )
    def test_property_g1_g2_cover_all_sites(self, group_a, group_b):
        spec = PartitionSpec.simple(group_a, group_b)
        master = min(group_a)
        g1 = spec.master_partition(master)
        g2 = spec.remote_partition(master)
        assert g1 | g2 == spec.sites
        assert not (g1 & g2)


class TestPartitionSchedule:
    def test_none_schedule_is_empty(self):
        assert len(PartitionSchedule.none()) == 0

    def test_permanent_schedule_has_one_event(self):
        schedule = PartitionSchedule.simple(2.0, [1, 2], [3])
        events = list(schedule)
        assert len(events) == 1
        assert events[0].time == 2.0
        assert not events[0].is_heal

    def test_transient_schedule_has_partition_then_heal(self):
        schedule = PartitionSchedule.transient(2.0, 9.0, [1], [2, 3])
        events = list(schedule)
        assert [event.time for event in events] == [2.0, 9.0]
        assert not events[0].is_heal
        assert events[1].is_heal

    def test_transient_rejects_heal_before_partition(self):
        with pytest.raises(PartitionError):
            PartitionSchedule.transient(5.0, 3.0, [1], [2])

    def test_add_keeps_events_sorted(self):
        schedule = PartitionSchedule.none()
        schedule.add(PartitionEvent(5.0, None))
        schedule.add(PartitionEvent(1.0, PartitionSpec.simple([1], [2])))
        assert [event.time for event in schedule] == [1.0, 5.0]


class TestPartitionManager:
    def test_initially_connected(self):
        manager = PartitionManager()
        assert not manager.partitioned
        assert not manager.separated(1, 2)

    def test_apply_partition_separates_sites(self):
        manager = PartitionManager()
        manager.apply(PartitionSpec.simple([1, 2], [3]))
        assert manager.partitioned
        assert manager.separated(1, 3)
        assert not manager.separated(1, 2)

    def test_heal_restores_connectivity(self):
        manager = PartitionManager()
        manager.apply(PartitionSpec.simple([1], [2]))
        manager.heal()
        assert not manager.partitioned
        assert not manager.separated(1, 2)

    def test_site_never_separated_from_itself(self):
        manager = PartitionManager()
        manager.apply(PartitionSpec.simple([1], [2]))
        assert not manager.separated(1, 1)
        assert not manager.separated(2, 2)

    def test_listeners_invoked_on_change(self):
        manager = PartitionManager()
        seen = []
        manager.subscribe(seen.append)
        spec = PartitionSpec.simple([1], [2])
        manager.apply(spec)
        manager.heal()
        assert seen == [spec, None]

    def test_history_records_transitions(self):
        manager = PartitionManager()
        spec = PartitionSpec.simple([1], [2])
        manager.apply(spec, at=3.0)
        manager.heal(at=8.0)
        assert manager.history == ((3.0, spec), (8.0, None))
