"""Tests for node timers, crash handling and the cluster wiring."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.failures import CrashEvent, CrashSchedule
from repro.sim.latency import ConstantLatency
from repro.sim.partition import PartitionSchedule


class StubRole:
    def __init__(self, node):
        self.node = node
        self.events = []
        node.attach(self)

    def on_start(self):
        self.events.append(("start", self.node.sim.now))

    def on_message(self, payload, envelope):
        self.events.append(("message", payload))

    def on_timeout(self, timer):
        self.events.append(("timeout", timer.name, self.node.sim.now))

    def on_crash(self):
        self.events.append(("crash", self.node.sim.now))

    def on_recover(self):
        self.events.append(("recover", self.node.sim.now))


def cluster_with_roles(n=2):
    cluster = Cluster(n, latency=ConstantLatency(1.0))
    roles = {site: StubRole(cluster.node(site)) for site in cluster.site_ids()}
    return cluster, roles


class TestTimers:
    def test_timer_fires_at_deadline(self):
        cluster, roles = cluster_with_roles()
        cluster.node(1).set_timer("vote-timeout", 3.0)
        cluster.run()
        assert ("timeout", "vote-timeout", 3.0) in roles[1].events

    def test_cancelled_timer_does_not_fire(self):
        cluster, roles = cluster_with_roles()
        cluster.node(1).set_timer("t", 3.0)
        cluster.node(1).cancel_timer("t")
        cluster.run()
        assert all(event[0] != "timeout" for event in roles[1].events)

    def test_rearming_replaces_previous_deadline(self):
        cluster, roles = cluster_with_roles()
        cluster.node(1).set_timer("t", 3.0)
        cluster.node(1).set_timer("t", 5.0)
        cluster.run()
        timeouts = [event for event in roles[1].events if event[0] == "timeout"]
        assert timeouts == [("timeout", "t", 5.0)]

    def test_timer_armed_reflects_state(self):
        cluster, _ = cluster_with_roles()
        node = cluster.node(1)
        assert not node.timer_armed("t")
        node.set_timer("t", 1.0)
        assert node.timer_armed("t")
        node.cancel_timer("t")
        assert not node.timer_armed("t")

    def test_cancel_all_timers(self):
        cluster, roles = cluster_with_roles()
        node = cluster.node(1)
        node.set_timer("a", 1.0)
        node.set_timer("b", 2.0)
        node.cancel_all_timers()
        cluster.run()
        assert all(event[0] != "timeout" for event in roles[1].events)

    def test_timeout_recorded_in_trace(self):
        cluster, _ = cluster_with_roles()
        cluster.node(1).set_timer("t", 2.0)
        cluster.run()
        assert cluster.trace.count("timeout", timer="t") == 1


class TestStartAndCrash:
    def test_start_all_invokes_on_start(self):
        cluster, roles = cluster_with_roles(3)
        cluster.start_all()
        cluster.run()
        for role in roles.values():
            assert ("start", 0.0) in role.events

    def test_crash_and_recover_hooks(self):
        cluster, roles = cluster_with_roles()
        cluster.node(1).crash()
        cluster.node(1).recover()
        events = [event[0] for event in roles[1].events]
        assert events == ["crash", "recover"]

    def test_double_crash_is_idempotent(self):
        cluster, roles = cluster_with_roles()
        cluster.node(1).crash()
        cluster.node(1).crash()
        assert [event[0] for event in roles[1].events] == ["crash"]

    def test_recover_without_crash_is_noop(self):
        cluster, roles = cluster_with_roles()
        cluster.node(1).recover()
        assert roles[1].events == []

    def test_note_adds_trace_record(self):
        cluster, _ = cluster_with_roles()
        cluster.node(1).note("transition", state="w")
        records = cluster.trace.filter("transition", site=1)
        assert len(records) == 1
        assert records[0].get("state") == "w"


class TestFailureInjector:
    def test_scheduled_crash_applies_at_time(self):
        cluster, roles = cluster_with_roles()
        cluster.apply_crash_schedule(CrashSchedule.single(2, at=3.0))
        cluster.run()
        assert ("crash", 3.0) in roles[2].events
        assert cluster.node(2).crashed

    def test_scheduled_recovery(self):
        cluster, roles = cluster_with_roles()
        cluster.apply_crash_schedule(CrashSchedule.single(2, at=1.0, recover_at=4.0))
        cluster.run()
        assert ("recover", 4.0) in roles[2].events
        assert not cluster.node(2).crashed

    def test_unknown_site_rejected(self):
        cluster, _ = cluster_with_roles()
        with pytest.raises(KeyError):
            cluster.apply_crash_schedule(CrashSchedule.single(99, at=1.0))

    def test_crash_event_validates_recovery_time(self):
        with pytest.raises(ValueError):
            CrashEvent(time=5.0, site=1, recover_at=5.0)

    def test_schedule_iterates_in_time_order(self):
        schedule = CrashSchedule()
        schedule.add(CrashEvent(time=5.0, site=1))
        schedule.add(CrashEvent(time=2.0, site=2))
        assert [event.time for event in schedule] == [2.0, 5.0]

    def test_schedule_sites(self):
        schedule = CrashSchedule.single(3, at=1.0)
        assert schedule.sites() == {3}


class TestCluster:
    def test_rejects_zero_sites(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_site_ids_are_one_based(self):
        assert Cluster(4).site_ids() == [1, 2, 3, 4]

    def test_max_delay_reflects_latency_model(self):
        assert Cluster(2, latency=ConstantLatency(2.5)).max_delay == 2.5

    def test_partition_schedule_recorded_in_trace(self):
        cluster, _ = cluster_with_roles()
        cluster.apply_partition_schedule(PartitionSchedule.transient(1.0, 3.0, [1], [2]))
        cluster.run()
        assert cluster.trace.count("partition") == 1
        assert cluster.trace.count("heal") == 1
