"""Regression tests for the kernel's hot-path representation.

These pin the contracts the flat tuple heap must keep while being fast:

* ``max_events`` stops *before* executing event ``max_events + 1``;
* lazy cancellation plus in-place compaction never desynchronizes
  ``pending()`` / ``peek_time`` from the live queue;
* sequence numbers are per-:class:`~repro.sim.kernel.Simulator`, so two
  interleaved simulators behave exactly like two fresh-process runs;
* the engine's trace gating (``NullTrace``) changes what is recorded, never
  what is executed.
"""

import pytest

from repro.sim.events import EventKind
from repro.sim.kernel import _COMPACT_MIN_CANCELLED, SimulationError, Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import NullTrace, Trace


class TestMaxEventsExactCount:
    def test_exactly_max_events_execute_before_the_error(self):
        sim = Simulator()
        fired = []

        def forever():
            fired.append(sim.now)
            sim.schedule(0.1, forever)

        sim.schedule(0.1, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=25)
        assert len(fired) == 25

    def test_run_within_the_budget_does_not_raise(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda: fired.append(None))
        sim.run(max_events=10)
        assert len(fired) == 10


class TestCompactionAccounting:
    def _arm(self, sim, count):
        fired = []
        events = [
            sim.schedule(1.0 + i, fired.append, arg=i, kind=EventKind.TIMER)
            for i in range(count)
        ]
        return events, fired

    def test_pending_and_peek_survive_a_compaction(self):
        sim = Simulator()
        total = 3 * _COMPACT_MIN_CANCELLED
        events, fired = self._arm(sim, total)
        # Cancel every event except the last few; this crosses both the
        # absolute threshold and the cancelled-majority condition, so the
        # heap is compacted in place mid-cancellation.
        survivors = events[-3:]
        for event in events[:-3]:
            event.cancel()
        assert sim.pending() == 3
        assert sim.peek_time() == survivors[0].time
        sim.run()
        assert fired == [event.arg for event in survivors]
        assert sim.pending() == 0
        assert sim.peek_time() is None

    def test_cancel_after_compaction_is_still_a_safe_noop(self):
        sim = Simulator()
        total = 3 * _COMPACT_MIN_CANCELLED
        events, _ = self._arm(sim, total)
        for event in events[:-1]:
            event.cancel()
        # Events dropped from the heap by compaction can still be cancelled
        # again without corrupting the live-entry accounting.
        for event in events[:-1]:
            event.cancel()
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_peek_time_pays_for_cancelled_heads(self):
        sim = Simulator()
        head = sim.schedule(1.0, lambda: None)
        tail = sim.schedule(2.0, lambda: None)
        head.cancel()
        assert sim.peek_time() == tail.time
        assert sim.pending() == 1


class _Echo:
    """Minimal role: bounce each integer payload back until ``rounds``."""

    def __init__(self, node, peer, rounds):
        self.node = node
        self.peer = peer
        self.rounds = rounds

    def on_message(self, payload, envelope):
        if payload < self.rounds:
            self.node.send(self.peer, payload + 1)


def _record_key(record):
    return (record.time, record.category, record.site, tuple(sorted(record.detail.items())))


def _ping_pong_nodes(sim, trace, rounds):
    network = Network(sim, latency=ConstantLatency(1.0), trace=trace)
    a = Node(1, sim, network)
    b = Node(2, sim, network)
    a.attach(_Echo(a, 2, rounds))
    b.attach(_Echo(b, 1, rounds))
    sim.schedule(0.0, lambda: a.send(2, 0))


def _ping_pong_trace(seed, rounds):
    """Run a two-node ping-pong and return the trace as comparable tuples.

    Built from the raw ``Simulator``/``Network``/``Node`` substrate so the
    run is a pure function of this simulator's schedule (protocol-level ids
    such as transaction ids come from process-global counters and would
    differ between runs by design).
    """
    sim = Simulator(seed=seed)
    trace = Trace()
    _ping_pong_nodes(sim, trace, rounds)
    sim.run_until_quiescent()
    return [_record_key(r) for r in trace]


class TestPerSimulatorSequenceIsolation:
    def test_interleaved_simulators_match_solo_runs(self):
        solo_a = _ping_pong_trace(seed=1, rounds=6)
        solo_b = _ping_pong_trace(seed=2, rounds=4)

        # Interleave: construct and *step* both simulators alternately in one
        # process.  With a process-global sequence counter the second
        # simulator's scheduling would perturb the first one's tie-breaking;
        # with per-simulator counters both traces are identical to solo runs.
        sim_a, trace_a = Simulator(seed=1), Trace()
        sim_b, trace_b = Simulator(seed=2), Trace()
        _ping_pong_nodes(sim_a, trace_a, rounds=6)
        _ping_pong_nodes(sim_b, trace_b, rounds=4)
        progressed = True
        while progressed:
            progressed = sim_a.step() is not None
            progressed = (sim_b.step() is not None) or progressed

        assert [_record_key(r) for r in trace_a] == solo_a
        assert [_record_key(r) for r in trace_b] == solo_b


class TestNullTraceGating:
    def test_null_trace_records_nothing(self):
        trace = NullTrace()
        trace.record(1.0, "send", site=1, payload="x")
        assert len(trace) == 0
        assert trace.enabled is False

    def test_scheduling_is_identical_with_and_without_tracing(self):
        class Collector:
            def __init__(self, sim, sink):
                self.sim = sim
                self.sink = sink

            def on_message(self, payload, envelope):
                self.sink.append((self.sim.now, payload))

        def run(trace):
            sim = Simulator(seed=3)
            network = Network(sim, latency=ConstantLatency(1.0), trace=trace)
            a = Node(1, sim, network)
            b = Node(2, sim, network)
            delivered = []
            b.attach(Collector(sim, delivered))
            sim.schedule(0.0, lambda: a.multicast([2, 2, 2], "hello"))
            end = sim.run_until_quiescent()
            return delivered, end, network.messages_delivered

        with_trace = run(Trace())
        without_trace = run(NullTrace())
        assert with_trace == without_trace
