"""Span recorder: nesting, interval recording, NDJSON export."""

import json
import time

from repro.obs.spans import NullSpanRecorder, SpanRecorder


class TestSpanTree:
    def test_nested_spans_record_parent_and_depth(self):
        recorder = SpanRecorder()
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                pass
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.index
        assert outer.end is not None and inner.end is not None
        # The child closed before the parent, on the same time base.
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_siblings_share_a_parent(self):
        recorder = SpanRecorder()
        with recorder.span("run") as run:
            with recorder.span("a"):
                pass
            with recorder.span("b"):
                pass
        names = [(s.name, s.parent, s.depth) for s in recorder.spans()]
        assert names == [("run", None, 0), ("a", run.index, 1), ("b", run.index, 1)]

    def test_attrs_are_kept(self):
        recorder = SpanRecorder()
        with recorder.span("dispatch", chunks=7) as span:
            pass
        assert span.attrs == {"chunks": 7}

    def test_exception_still_closes_the_span(self):
        recorder = SpanRecorder()
        try:
            with recorder.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (span,) = recorder.spans()
        assert span.end is not None
        # The stack unwound: the next span is a root again.
        with recorder.span("after") as after:
            pass
        assert after.depth == 0 and after.parent is None

    def test_totals_sum_per_name(self):
        recorder = SpanRecorder()
        recorder.record_interval("phase", 10.0, 10.5)
        recorder.record_interval("phase", 20.0, 20.25)
        recorder.record_interval("other", 30.0, 31.0)
        totals = recorder.totals()
        assert totals["phase"] == 0.75
        assert totals["other"] == 1.0


class TestRecordInterval:
    def test_absolute_perf_counter_values_become_origin_relative(self):
        recorder = SpanRecorder()
        start = time.perf_counter()
        end = start + 0.5
        span = recorder.record_interval("worker-execute", start, end, pid=42)
        assert span.end is not None
        assert abs(span.duration - 0.5) < 1e-9
        assert span.start >= 0.0
        assert span.attrs == {"pid": 42}

    def test_interval_is_parented_under_the_open_span(self):
        recorder = SpanRecorder()
        now = time.perf_counter()
        with recorder.span("run") as run:
            span = recorder.record_interval("chunk", now, now + 0.1)
        assert span.parent == run.index
        assert span.depth == 1


class TestNdjsonExport:
    def test_one_json_line_per_span(self, tmp_path):
        recorder = SpanRecorder()
        with recorder.span("outer", tasks=3):
            recorder.record_interval(
                "inner", time.perf_counter(), time.perf_counter()
            )
        path = tmp_path / "trace.ndjson"
        recorder.write_ndjson(path)
        lines = path.read_bytes().decode().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        # Open order: the interval was *closed* first but opened second.
        assert [r["span"] for r in records] == ["outer", "inner"]
        assert records[0]["attrs"] == {"tasks": 3}
        assert records[1]["parent"] == records[0]["index"]
        for record in records:
            assert record["duration"] >= 0.0
            assert record["end"] >= record["start"]

    def test_export_durations_match_totals_within_rounding(self):
        recorder = SpanRecorder()
        for index in range(10):
            recorder.record_interval("phase", 1.0 + index, 1.5 + index)
        exported = sum(
            json.loads(line)["duration"]
            for line in recorder.to_ndjson_bytes().decode().splitlines()
        )
        assert abs(exported - recorder.totals()["phase"]) < 1e-6

    def test_write_creates_parent_directories(self, tmp_path):
        recorder = SpanRecorder()
        with recorder.span("s"):
            pass
        target = tmp_path / "deep" / "dir" / "trace.ndjson"
        recorder.write_ndjson(target)
        assert target.exists()


class TestNullSpanRecorder:
    def test_records_nothing(self):
        recorder = NullSpanRecorder()
        with recorder.span("x") as span:
            assert span is None
        assert recorder.record_interval("y", 0.0, 1.0) is None
        assert recorder.spans() == ()
        assert recorder.to_ndjson_bytes() == b""
