"""The metrics registry's merge algebra and snapshot canonicality.

The whole design rests on snapshots being associatively and commutatively
mergeable (worker chunks arrive in nondeterministic order) and canonical
(two registries holding the same data serialize byte-identically).  These
tests use exactly-representable values (ints and multiples of 0.25) so
float addition is exact and the algebraic assertions are equality, not
approximation.
"""

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    SIM_TIME_BUCKETS,
    MetricsRegistry,
    activate,
    get_active,
    set_active,
)


def registry_a():
    r = MetricsRegistry()
    r.counter("tasks").inc(3)
    r.counter("only.a").inc(1)
    r.gauge("depth").set(4.0)
    h = r.histogram("wait", bounds=SIM_TIME_BUCKETS)
    for value in (0.25, 1.0, 64.0, 128.0):
        h.observe(value)
    return r


def registry_b():
    r = MetricsRegistry()
    r.counter("tasks").inc(5)
    r.counter("only.b").inc(7)
    r.gauge("depth").set(2.0)
    h = r.histogram("wait", bounds=SIM_TIME_BUCKETS)
    for value in (0.5, 0.5, 8.0):
        h.observe(value)
    return r


def registry_c():
    r = MetricsRegistry()
    r.counter("tasks").inc(11)
    r.gauge("depth").set(9.5)
    r.histogram("wait", bounds=SIM_TIME_BUCKETS).observe(0.25)
    r.histogram("sizes", bounds=COUNT_BUCKETS).observe(17.0)
    return r


def merged(*snapshots):
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry


class TestInstruments:
    def test_counter_adds(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.counter("x").inc(4)
        assert r.counter("x").value == 5

    def test_gauge_tracks_latest_and_high_watermark(self):
        r = MetricsRegistry()
        g = r.gauge("g")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.high == 3.0
        # Only the high watermark enters the snapshot: "latest" has no
        # order-independent merge.
        assert r.snapshot()["gauges"]["g"] == 3.0

    def test_histogram_buckets_count_and_extremes(self):
        r = MetricsRegistry()
        h = r.histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 5.0):
            h.observe(value)
        assert h.counts == [2, 1, 1]  # <=1, <=2, overflow
        assert h.count == 4
        assert h.total == 8.0
        assert (h.min, h.max) == (0.5, 5.0)
        assert h.mean == 2.0

    def test_histogram_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(2.0, 1.0))


class TestMergeAlgebra:
    def test_merge_is_commutative(self):
        a, b = registry_a().snapshot(), registry_b().snapshot()
        assert merged(a, b).to_json_bytes() == merged(b, a).to_json_bytes()

    def test_merge_is_associative(self):
        a, b, c = (
            registry_a().snapshot(),
            registry_b().snapshot(),
            registry_c().snapshot(),
        )
        left = merged(merged(a, b).snapshot(), c)
        right = merged(a, merged(b, c).snapshot())
        assert left.to_json_bytes() == right.to_json_bytes()

    def test_merge_equals_single_registry_of_all_observations(self):
        a, b = registry_a().snapshot(), registry_b().snapshot()
        combined = MetricsRegistry()
        combined.counter("tasks").inc(8)
        combined.counter("only.a").inc(1)
        combined.counter("only.b").inc(7)
        combined.gauge("depth").set(4.0)
        h = combined.histogram("wait", bounds=SIM_TIME_BUCKETS)
        for value in (0.25, 1.0, 64.0, 128.0, 0.5, 0.5, 8.0):
            h.observe(value)
        assert merged(a, b).to_json_bytes() == combined.to_json_bytes()

    def test_from_snapshot_round_trips(self):
        snapshot = registry_a().snapshot()
        assert MetricsRegistry.from_snapshot(snapshot).snapshot() == snapshot

    def test_schema_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsRegistry().merge_snapshot({"schema": 999})

    def test_histogram_bounds_mismatch_is_rejected(self):
        r = MetricsRegistry()
        r.histogram("wait", bounds=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("wait", bounds=(1.0, 4.0)).observe(3.0)
        with pytest.raises(ValueError, match="bucket mismatch"):
            r.merge_snapshot(other.snapshot())


class TestSnapshotCanonicality:
    def test_creation_order_does_not_change_bytes(self):
        forward = MetricsRegistry()
        forward.counter("a").inc(1)
        forward.counter("b").inc(2)
        forward.gauge("g").set(1.0)
        backward = MetricsRegistry()
        backward.gauge("g").set(1.0)
        backward.counter("b").inc(2)
        backward.counter("a").inc(1)
        assert forward.to_json_bytes() == backward.to_json_bytes()

    def test_snapshot_is_plain_json_data(self):
        import json

        snapshot = registry_c().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestActiveRegistry:
    def test_default_is_inactive(self):
        assert get_active() is None

    def test_activate_scopes_the_registry(self):
        registry = MetricsRegistry()
        with activate(registry) as active:
            assert active is registry
            assert get_active() is registry
        assert get_active() is None

    def test_activate_nests_and_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with activate(outer):
            with activate(inner):
                assert get_active() is inner
            assert get_active() is outer
        assert get_active() is None

    def test_set_active_installs_the_kernel_hook(self):
        from repro.sim import kernel

        registry = MetricsRegistry()
        set_active(registry)
        try:
            assert kernel._METRICS_HOOK is not None
        finally:
            set_active(None)
        assert kernel._METRICS_HOOK is None

    def test_kernel_run_records_event_counters(self):
        from repro.sim.kernel import Simulator

        registry = MetricsRegistry()
        with activate(registry):
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.schedule(2.0, lambda: None)
            cancelled = sim.schedule(3.0, lambda: None)
            cancelled.cancel()
            sim.run()
        counters = registry.snapshot()["counters"]
        assert counters["sim.events_scheduled"] == 3
        assert counters["sim.events_executed"] == 2
        assert counters["sim.events_cancelled"] == 1
