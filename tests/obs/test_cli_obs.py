"""The CLI observability surface: --metrics-json, --trace-ndjson,
--progress and the ``repro report`` subcommand."""

import json

import pytest

from repro.__main__ import STATS_SCHEMA_VERSION, main

SWEEP = ["sweep", "--protocol", "two-phase-commit", "--times", "0.5", "1.5"]


def load(path):
    return json.loads(path.read_text())


class TestMetricsJson:
    def test_sweep_writes_a_versioned_metrics_document(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(SWEEP + ["--metrics-json", str(out)]) == 0
        document = load(out)
        assert document["command"] == "sweep"
        assert document["schema_version"] == STATS_SCHEMA_VERSION
        assert document["total"] == 6
        counters = document["metrics"]["counters"]
        assert counters["engine.tasks.total"] == 6
        assert counters["engine.tasks.executed"] == 6
        assert counters["sim.events_executed"] > 0

    def test_streamed_and_materialized_sweeps_report_the_same_counters(
        self, capsys, tmp_path
    ):
        plain, streamed = tmp_path / "plain.json", tmp_path / "streamed.json"
        assert main(SWEEP + ["--metrics-json", str(plain)]) == 0
        assert main(SWEEP + ["--stream", "--metrics-json", str(streamed)]) == 0
        assert (
            load(plain)["metrics"]["counters"]
            == load(streamed)["metrics"]["counters"]
        )

    def test_throughput_reports_txn_instruments(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "throughput",
                    "--protocols",
                    "two-phase-commit",
                    "--transactions",
                    "20",
                    "--metrics-json",
                    str(out),
                ]
            )
            == 0
        )
        metrics = load(out)["metrics"]
        assert metrics["counters"]["txn.offered"] == 20
        assert metrics["histograms"]["txn.lock_wait_simtime"]["count"] == 20
        assert "txn.retry_backlog_peak" in metrics["gauges"]

    def test_modelcheck_reports_state_instruments(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "modelcheck",
                    "--protocol",
                    "two-phase-commit",
                    "--sites",
                    "2",
                    "--metrics-json",
                    str(out),
                ]
            )
            == 0
        )
        metrics = load(out)["metrics"]
        assert metrics["counters"]["modelcheck.checks"] > 0
        assert metrics["counters"]["modelcheck.states_explored"] > 0
        assert "modelcheck.frontier_depth" in metrics["gauges"]

    def test_shard_and_merge_report_skew(self, capsys, tmp_path):
        spills = []
        for index in range(2):
            spill = tmp_path / f"shard-{index}.jsonl"
            shard_metrics = tmp_path / f"shard-{index}-metrics.json"
            assert (
                main(
                    [
                        "shard",
                        "--shard-index",
                        str(index),
                        "--shard-count",
                        "2",
                        "--out",
                        str(spill),
                        "--protocol",
                        "two-phase-commit",
                        "--times",
                        "0.5",
                        "1.5",
                        "--metrics-json",
                        str(shard_metrics),
                    ]
                )
                == 0
            )
            spills.append(spill)
            metrics = load(shard_metrics)["metrics"]
            assert metrics["counters"]["shard.spill.records"] > 0
            assert metrics["gauges"]["shard.skew"] > 0
        merge_metrics = tmp_path / "merge-metrics.json"
        assert (
            main(
                ["merge", str(spills[0]), str(spills[1])]
                + ["--metrics-json", str(merge_metrics)]
            )
            == 0
        )
        document = load(merge_metrics)
        assert document["command"] == "merge"
        metrics = document["metrics"]
        assert metrics["counters"]["merge.shards"] == 2
        assert metrics["counters"]["merge.records"] == 6
        assert metrics["histograms"]["merge.records_per_shard"]["count"] == 2


class TestTraceNdjson:
    def test_sweep_writes_spans(self, capsys, tmp_path):
        trace = tmp_path / "trace.ndjson"
        assert main(SWEEP + ["--stream", "--trace-ndjson", str(trace)]) == 0
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert any(record["span"] == "cache-scan" for record in records)
        for record in records:
            assert record["duration"] >= 0


class TestProgress:
    def test_progress_paints_stderr_only(self, capsys):
        assert main(SWEEP + ["--stream", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "6/6" in captured.err
        assert "\r" not in captured.out

    def test_materialized_sweep_also_supports_progress(self, capsys):
        assert main(SWEEP + ["--progress"]) == 0
        captured = capsys.readouterr()
        assert "6/6" in captured.err


class TestReportCommand:
    def test_renders_a_metrics_document(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(SWEEP + ["--metrics-json", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "phase breakdown" in text
        assert "counters" in text

    def test_missing_file_is_exit_2(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "report failed" in capsys.readouterr().err

    def test_invalid_json_is_exit_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["report", str(bad)]) == 2
        assert "report failed" in capsys.readouterr().err

    def test_non_object_payload_is_exit_2(self, capsys, tmp_path):
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]")
        assert main(["report", str(arr)]) == 2
        assert "not a metrics document" in capsys.readouterr().err


class TestStatsSchema:
    @pytest.mark.parametrize(
        "argv",
        [
            SWEEP,
            ["throughput", "--protocols", "two-phase-commit", "--transactions", "10"],
            ["modelcheck", "--protocol", "two-phase-commit", "--sites", "2"],
        ],
        ids=["sweep", "throughput", "modelcheck"],
    )
    def test_stats_json_carries_the_schema_version(self, capsys, tmp_path, argv):
        stats_path = tmp_path / "stats.json"
        assert main(argv + ["--stats-json", str(stats_path)]) == 0
        stats = load(stats_path)
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert stats["command"] == argv[0]

    def test_shard_and_merge_stats_share_the_schema_version(
        self, capsys, tmp_path
    ):
        spill = tmp_path / "spill.jsonl"
        shard_stats = tmp_path / "shard-stats.json"
        assert (
            main(
                [
                    "shard",
                    "--shard-index",
                    "0",
                    "--shard-count",
                    "1",
                    "--out",
                    str(spill),
                    "--protocol",
                    "two-phase-commit",
                    "--times",
                    "0.5",
                    "--stats-json",
                    str(shard_stats),
                ]
            )
            == 0
        )
        merge_stats = tmp_path / "merge-stats.json"
        assert main(["merge", str(spill), "--stats-json", str(merge_stats)]) == 0
        assert load(shard_stats)["schema_version"] == STATS_SCHEMA_VERSION
        assert load(merge_stats)["schema_version"] == STATS_SCHEMA_VERSION
        assert load(merge_stats)["command"] == "merge"

    def test_experiments_run_accepts_obs_flags(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        trace = tmp_path / "trace.ndjson"
        assert (
            main(
                [
                    "run",
                    "FIG1",
                    "--metrics-json",
                    str(out),
                    "--trace-ndjson",
                    str(trace),
                ]
            )
            == 0
        )
        document = load(out)
        assert document["command"] == "run"
        assert document["metrics"]["counters"]["sim.events_executed"] > 0
        spans = [json.loads(line)["span"] for line in trace.read_text().splitlines()]
        assert "FIG1" in spans
