"""The --progress stderr line and the ``repro report`` rendering."""

import io

from repro.obs.metrics import MetricsRegistry, SIM_TIME_BUCKETS
from repro.obs.progress import ProgressLine
from repro.obs.report import (
    distribution_rows,
    phase_rows,
    render_metrics_document,
    worker_rows,
)


class TestProgressLine:
    def test_paints_rate_hits_and_eta(self):
        stream = io.StringIO()
        line = ProgressLine(10, label="sweep", stream=stream)
        line.update(5, executed=3, cache_hits=2, force=True)
        line.close()
        out = stream.getvalue()
        assert "\r" in out
        assert "sweep: 5/10" in out
        assert "cache 40%" in out
        assert out.endswith("\n")

    def test_throttles_repaints_but_always_paints_completion(self):
        stream = io.StringIO()
        line = ProgressLine(100, stream=stream)
        line.update(1, force=True)
        painted = stream.getvalue()
        line.update(2)  # within min_interval: dropped
        assert stream.getvalue() == painted
        line.update(100)  # done == total always paints
        assert "100/100" in stream.getvalue()

    def test_close_without_paint_writes_nothing(self):
        stream = io.StringIO()
        ProgressLine(10, stream=stream).close()
        assert stream.getvalue() == ""


def sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("engine.tasks.total").inc(96)
    registry.counter("engine.worker.w0.tasks").inc(48)
    registry.counter("engine.worker.w1.tasks").inc(48)
    registry.gauge("engine.worker.w0.utilization").set(0.5)
    registry.gauge("engine.worker.w1.utilization").set(0.75)
    registry.gauge("engine.dispatch_overhead_share").set(0.375)
    hist = registry.histogram("engine.task.execute_seconds")
    for value in (0.001, 0.002, 0.004):
        hist.observe(value)
    wait = registry.histogram("txn.lock_wait_simtime", bounds=SIM_TIME_BUCKETS)
    wait.observe(2.0)
    return registry.snapshot()


class TestReportRows:
    def test_phase_rows_pick_only_seconds_histograms(self):
        rows = phase_rows(sample_snapshot(), elapsed=0.014)
        assert [row["phase"] for row in rows] == ["engine.task.execute"]
        (row,) = rows
        assert row["count"] == 3
        assert row["share"] == "50.0%"

    def test_distribution_rows_pick_the_rest(self):
        rows = distribution_rows(sample_snapshot())
        assert [row["distribution"] for row in rows] == ["txn.lock_wait_simtime"]
        assert rows[0]["total"] == 2.0

    def test_worker_rows_join_counters_and_gauges(self):
        rows = worker_rows(sample_snapshot())
        assert [row["worker"] for row in rows] == ["w0", "w1"]
        assert rows[0]["tasks"] == 48
        assert rows[1]["utilization"] == "75.0%"


class TestRenderDocument:
    def test_full_document_renders_every_section(self):
        document = {
            "command": "sweep",
            "schema_version": 1,
            "total": 96,
            "workers": 2,
            "elapsed": 0.014,
            "metrics": sample_snapshot(),
        }
        text = render_metrics_document(document)
        assert "run" in text
        assert "phase breakdown" in text
        assert "distributions" in text
        assert "dispatch overhead share 37.5%" in text
        assert "counters" in text
        # Worker-prefixed names are folded into the worker table, not
        # repeated in the counter/gauge listings.
        assert "engine.worker.w0.tasks" not in text

    def test_bare_snapshot_is_accepted(self):
        text = render_metrics_document(sample_snapshot())
        assert "counters" in text

    def test_empty_document_has_a_placeholder(self):
        assert render_metrics_document({}) == "(empty metrics document)"
