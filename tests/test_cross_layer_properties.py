"""Cross-layer property-based tests.

These tie the layers together: determinism of whole runs, agreement between
the database state and the protocol decisions, and the headline safety
property under randomly drawn partition scenarios (including transient ones
and stochastic latencies).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.latency import UniformLatency
from repro.sim.partition import PartitionSchedule
from repro.workloads.partitions import random_partition_schedule, random_transient_schedule

SLOW = settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])


def run(name, **kwargs):
    return run_scenario(create_protocol(name), ScenarioSpec(**kwargs))


class TestDeterminism:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_same_configuration_same_outcome(self, seed):
        spec = dict(
            n_sites=4,
            partition=random_partition_schedule(4, seed=seed),
            latency=UniformLatency(0.25, 1.0),
            seed=seed,
        )
        first = run("terminating-three-phase-commit", **spec)
        second = run("terminating-three-phase-commit", **spec)
        assert first.decisions == second.decisions
        assert first.decision_times == second.decision_times
        assert first.messages_sent == second.messages_sent
        assert len(first.trace) == len(second.trace)

    def test_different_seeds_can_change_timing_but_not_safety(self):
        partition = PartitionSchedule.simple(2.3, [1, 2], [3, 4])
        for seed in range(5):
            result = run(
                "terminating-three-phase-commit",
                n_sites=4,
                partition=partition,
                latency=UniformLatency(0.25, 1.0),
                seed=seed,
            )
            assert not result.atomicity_violated
            assert not result.blocked


class TestDatabaseAgreement:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_property_decisions_match_database_state(self, seed):
        result = run(
            "terminating-three-phase-commit",
            n_sites=4,
            partition=random_partition_schedule(4, seed=seed),
            seed=seed,
        )
        for site, decision in result.decisions.items():
            db = result.db_sites[site]
            assert db.decision(result.transaction.transaction_id) == decision
            if decision == "commit":
                assert result.values_at_end[site] == result.spec.write_value
            elif decision == "abort":
                assert result.values_at_end[site] != result.spec.write_value
            # terminated sites hold no locks
            if decision is not None:
                assert not db.holds_locks(result.transaction.transaction_id)

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_property_wal_contains_durable_decisions(self, seed):
        result = run(
            "terminating-three-phase-commit",
            n_sites=3,
            partition=random_partition_schedule(3, seed=seed),
            seed=seed,
        )
        for site, decision in result.decisions.items():
            if decision is None:
                continue
            assert result.db_sites[site].wal.decision(result.transaction.transaction_id) == decision


class TestTheorem9Randomized:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_property_random_permanent_partitions_are_safe(self, seed):
        result = run(
            "terminating-three-phase-commit",
            n_sites=5,
            partition=random_partition_schedule(5, seed=seed),
            seed=seed,
        )
        assert not result.atomicity_violated
        assert not result.blocked

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_property_random_transient_partitions_are_safe(self, seed):
        result = run(
            "terminating-three-phase-commit",
            n_sites=4,
            partition=random_transient_schedule(4, seed=seed),
            horizon=80.0,
            seed=seed,
        )
        assert not result.atomicity_violated
        assert not result.blocked

    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        no_voter=st.sampled_from([2, 3]),
    )
    def test_property_no_voter_forces_global_abort_or_consistency(self, seed, no_voter):
        result = run(
            "terminating-three-phase-commit",
            n_sites=4,
            partition=random_partition_schedule(4, seed=seed),
            no_voters=frozenset({no_voter}),
            seed=seed,
        )
        assert not result.atomicity_violated
        assert not result.blocked
        # a dissenting vote can never lead to a commit anywhere
        assert not result.committed_sites

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_property_quorum_construction_matches_three_phase_guarantee(self, seed):
        partition = random_partition_schedule(4, seed=seed)
        three_phase = run(
            "terminating-three-phase-commit", n_sites=4, partition=partition, seed=seed
        )
        quorum = run("terminating-quorum-commit", n_sites=4, partition=partition, seed=seed)
        assert not quorum.atomicity_violated
        assert not quorum.blocked
        # both constructions face the same scenario; their *global* verdicts agree
        assert (len(three_phase.committed_sites) > 0) == (len(quorum.committed_sites) > 0)


class TestBaselinesNeverSilentlyDiverge:
    """Even the broken protocols must fail loudly (mixed decisions), never by
    installing different values under the same 'commit' decision."""

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_property_committed_stores_always_agree(self, seed):
        for protocol in ("extended-two-phase-commit", "naive-extended-three-phase-commit"):
            result = run(
                protocol,
                n_sites=3,
                partition=random_partition_schedule(3, seed=seed),
                seed=seed,
            )
            assert result.stores_agree
