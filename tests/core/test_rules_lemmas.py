"""Tests for Rule (a)/(b) augmentation and the Lemma 1/2 checks."""

import pytest

from repro.core import messages as m
from repro.core.catalog import (
    four_phase_commit,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.concurrency import analyze
from repro.core.fsa import MASTER_ROLE, SLAVE_ROLE
from repro.core.lemmas import check_lemma1, check_lemma2, check_nonblocking_conditions
from repro.core.rules import FinalAction, augment_with_rules


class TestRuleA:
    def test_two_phase_slave_wait_times_out_to_commit(self):
        """C(w_slave) contains a commit state, so Rule (a) assigns commit."""
        augmented = augment_with_rules(two_phase_commit(), 3)
        assert augmented.timeout_target(SLAVE_ROLE, m.WAIT) is FinalAction.COMMIT

    def test_two_phase_master_wait_times_out_to_abort(self):
        augmented = augment_with_rules(two_phase_commit(), 3)
        assert augmented.timeout_target(MASTER_ROLE, m.WAIT) is FinalAction.ABORT

    def test_three_phase_slave_wait_times_out_to_abort(self):
        """Section 3: the timeout transition from w3 should go to the abort state."""
        augmented = augment_with_rules(three_phase_commit(), 3)
        assert augmented.timeout_target(SLAVE_ROLE, m.WAIT) is FinalAction.ABORT

    def test_three_phase_slave_prepared_times_out_to_commit(self):
        """Section 3: the timeout transition from p2 should go to the commit state."""
        augmented = augment_with_rules(three_phase_commit(), 3)
        assert augmented.timeout_target(SLAVE_ROLE, m.PREPARED) is FinalAction.COMMIT

    def test_final_states_get_no_timeout_transition(self):
        augmented = augment_with_rules(three_phase_commit(), 3)
        assert augmented.timeout_target(SLAVE_ROLE, m.COMMITTED) is None
        assert augmented.timeout_target(SLAVE_ROLE, m.ABORTED) is None
        assert augmented.timeout_target(MASTER_ROLE, m.COMMITTED) is None

    def test_initial_states_time_out_to_abort(self):
        augmented = augment_with_rules(three_phase_commit(), 3)
        assert augmented.timeout_target(SLAVE_ROLE, m.INITIAL) is FinalAction.ABORT
        assert augmented.timeout_target(MASTER_ROLE, m.INITIAL) is FinalAction.ABORT


class TestRuleB:
    def test_slave_wait_ud_transition_follows_master_wait_timeout(self):
        """S(w_slave) = {master:w}; master w times out to abort, so UD -> abort."""
        augmented = augment_with_rules(two_phase_commit(), 3)
        assert augmented.undeliverable_target(SLAVE_ROLE, m.WAIT) is FinalAction.ABORT

    def test_master_wait_ud_transition_follows_slave_initial_timeout(self):
        augmented = augment_with_rules(two_phase_commit(), 3)
        assert augmented.undeliverable_target(MASTER_ROLE, m.WAIT) is FinalAction.ABORT

    def test_states_that_receive_nothing_get_no_ud_transition(self):
        augmented = augment_with_rules(two_phase_commit(), 3)
        # the master's abort state never receives protocol messages
        assert augmented.undeliverable_target(MASTER_ROLE, m.ABORTED) is None

    def test_three_phase_slave_prepared_ud_follows_master_prepared_timeout(self):
        augmented = augment_with_rules(three_phase_commit(), 3)
        master_prepared_timeout = augmented.timeout_target(MASTER_ROLE, m.PREPARED)
        assert (
            augmented.undeliverable_target(SLAVE_ROLE, m.PREPARED)
            is master_prepared_timeout
        )

    def test_no_ambiguous_states_for_catalogued_protocols(self):
        for spec in (two_phase_commit(), three_phase_commit(), quorum_commit()):
            augmented = augment_with_rules(spec, 3)
            assert augmented.ambiguous == set(), spec.name

    def test_describe_lists_both_kinds_of_transitions(self):
        augmented = augment_with_rules(two_phase_commit(), 3)
        text = augmented.describe()
        assert "timeout -> commit" in text
        assert "undeliverable -> abort" in text


class TestFig2Reproduction:
    """The full Rule (a)/(b) table for 2PC with two sites (Fig. 2)."""

    @pytest.fixture(scope="class")
    def augmented(self):
        return augment_with_rules(two_phase_commit(), 2)

    def test_master_annotations(self, augmented):
        assert augmented.timeout_target(MASTER_ROLE, m.INITIAL) is FinalAction.ABORT
        assert augmented.timeout_target(MASTER_ROLE, m.WAIT) is FinalAction.ABORT
        assert augmented.undeliverable_target(MASTER_ROLE, m.WAIT) is FinalAction.ABORT

    def test_slave_annotations(self, augmented):
        assert augmented.timeout_target(SLAVE_ROLE, m.INITIAL) is FinalAction.ABORT
        assert augmented.timeout_target(SLAVE_ROLE, m.WAIT) is FinalAction.COMMIT
        assert augmented.undeliverable_target(SLAVE_ROLE, m.WAIT) is FinalAction.ABORT


class TestLemmas:
    def test_two_phase_violates_lemma1_at_slave_wait(self):
        analysis = analyze(two_phase_commit(), 3)
        assert (SLAVE_ROLE, m.WAIT) in check_lemma1(analysis)

    def test_two_phase_violates_lemma2_at_slave_wait(self):
        analysis = analyze(two_phase_commit(), 3)
        assert (SLAVE_ROLE, m.WAIT) in check_lemma2(analysis)

    def test_three_phase_satisfies_both_lemmas(self):
        report = check_nonblocking_conditions(three_phase_commit(), 3)
        assert report.satisfies_lemma1
        assert report.satisfies_lemma2
        assert report.satisfies_both

    def test_quorum_and_four_phase_satisfy_both_lemmas(self):
        for spec in (quorum_commit(), four_phase_commit()):
            report = check_nonblocking_conditions(spec, 3)
            assert report.satisfies_both, spec.name

    def test_two_phase_report_summary_mentions_violation(self):
        report = check_nonblocking_conditions(two_phase_commit(), 3)
        assert not report.satisfies_both
        assert "violates" in report.summary()

    def test_three_phase_report_summary_mentions_satisfies(self):
        report = check_nonblocking_conditions(three_phase_commit(), 3)
        assert "satisfies" in report.summary()

    @pytest.mark.parametrize("n_sites", [2, 3, 4, 5])
    def test_verdicts_stable_in_number_of_sites(self, n_sites):
        assert not check_nonblocking_conditions(two_phase_commit(), n_sites).satisfies_both
        assert check_nonblocking_conditions(three_phase_commit(), n_sites).satisfies_both

    def test_reports_reuse_precomputed_analysis(self):
        analysis = analyze(three_phase_commit(), 3)
        report = check_nonblocking_conditions(three_phase_commit(), 3, analysis=analysis)
        assert report.satisfies_both
