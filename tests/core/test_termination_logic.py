"""Tests for the termination protocol's decision logic and timers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.termination import (
    MasterTerminationTracker,
    TerminationOutcome,
    TerminationTimers,
    master_decision,
)
from repro.core.transient import (
    PartitionCase,
    TransientPolicy,
    bounded_cases,
    classify_interleaving,
    worst_case_wait,
)


class TestTerminationTimers:
    def test_default_multiples_of_t(self):
        timers = TerminationTimers(max_delay=1.0)
        assert timers.master_vote_timeout == 2.0
        assert timers.slave_timeout == 3.0
        assert timers.probe_window == 5.0
        assert timers.wait_in_w == 6.0
        assert timers.wait_in_p == 5.0

    def test_scaling_with_t(self):
        timers = TerminationTimers(max_delay=2.5)
        assert timers.master_vote_timeout == 5.0
        assert timers.wait_in_w == 15.0

    def test_rejects_nonpositive_t(self):
        with pytest.raises(ValueError):
            TerminationTimers(max_delay=0.0)

    def test_as_dict_contains_every_interval(self):
        entries = TerminationTimers(1.0).as_dict()
        assert set(entries) == {
            "T",
            "master_vote_timeout",
            "slave_timeout",
            "probe_window",
            "wait_in_w",
            "wait_in_p",
        }


class TestMasterDecisionRule:
    """The Section 5.3 rule: abort iff probes came from exactly the reachable slaves."""

    def test_no_prepare_crossed_boundary_aborts(self):
        """All G1 slaves probe, all G2 prepares bounced -> abort (Lemma 4)."""
        decision = master_decision(slaves=[2, 3, 4], undeliverable=[4], probed=[2, 3])
        assert decision.outcome is TerminationOutcome.ABORT
        assert not decision.commits

    def test_prepare_crossed_boundary_commits(self):
        """Slave 4's prepare bounced but slave 3 (in G2) received its prepare
        and therefore never probes -> probe set differs -> commit."""
        decision = master_decision(slaves=[2, 3, 4], undeliverable=[4], probed=[2])
        assert decision.outcome is TerminationOutcome.COMMIT

    def test_probe_from_ud_slave_forces_commit(self):
        """A probe from a slave whose prepare bounced means the sets differ."""
        decision = master_decision(slaves=[2, 3], undeliverable=[3], probed=[2, 3])
        assert decision.outcome is TerminationOutcome.COMMIT

    def test_all_prepares_delivered_and_all_probe_aborts(self):
        decision = master_decision(slaves=[2, 3], undeliverable=[], probed=[2, 3])
        assert decision.outcome is TerminationOutcome.ABORT

    def test_decision_records_sets_and_reason(self):
        decision = master_decision(slaves=[2, 3, 4], undeliverable=[4], probed=[2, 3])
        assert decision.undeliverable == frozenset({4})
        assert decision.probed == frozenset({2, 3})
        assert decision.expected_probers == frozenset({2, 3})
        assert "abort" in decision.reason

    def test_non_slave_ids_are_ignored(self):
        decision = master_decision(slaves=[2, 3], undeliverable=[99], probed=[2, 3])
        assert decision.outcome is TerminationOutcome.ABORT

    @given(
        slaves=st.sets(st.integers(min_value=2, max_value=12), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_property_rule_matches_set_equation(self, slaves, data):
        undeliverable = data.draw(st.sets(st.sampled_from(sorted(slaves))))
        probed = data.draw(st.sets(st.sampled_from(sorted(slaves))))
        decision = master_decision(slaves, undeliverable, probed)
        expected_abort = (slaves - undeliverable) == probed
        assert decision.commits == (not expected_abort)


class TestMasterTerminationTracker:
    def test_window_lifecycle(self):
        tracker = MasterTerminationTracker(slaves=frozenset({2, 3, 4}))
        assert not tracker.window_open
        tracker.open_window(first_undeliverable=4)
        assert tracker.window_open
        tracker.record_probe(2)
        tracker.record_probe(3)
        decision = tracker.decide()
        assert not tracker.window_open
        assert decision.outcome is TerminationOutcome.ABORT

    def test_additional_undeliverables_accumulate(self):
        tracker = MasterTerminationTracker(slaves=frozenset({2, 3, 4}))
        tracker.open_window(4)
        tracker.record_undeliverable(3)
        tracker.record_probe(2)
        decision = tracker.decide()
        # reachable slaves = {2}; probes = {2} -> abort
        assert decision.outcome is TerminationOutcome.ABORT
        assert decision.undeliverable == frozenset({3, 4})

    def test_missing_probe_means_commit(self):
        tracker = MasterTerminationTracker(slaves=frozenset({2, 3, 4}))
        tracker.open_window(4)
        tracker.record_probe(2)
        # slave 3's prepare was delivered across the boundary; it never probes
        decision = tracker.decide()
        assert decision.outcome is TerminationOutcome.COMMIT

    def test_unknown_slave_rejected(self):
        tracker = MasterTerminationTracker(slaves=frozenset({2, 3}))
        with pytest.raises(ValueError):
            tracker.record_probe(9)
        with pytest.raises(ValueError):
            tracker.record_undeliverable(9)


class TestTransientTaxonomy:
    def test_paper_bounds(self):
        assert worst_case_wait(PartitionCase.SOME_PREPARE_SOME_NOT_ACK_LOST, 1.0) == 1.0
        assert worst_case_wait(PartitionCase.SOME_PREPARE_PROBE_LOST, 1.0) == 4.0
        assert worst_case_wait(PartitionCase.SOME_PREPARE_PROBES_PASS, 1.0) == 5.0
        assert worst_case_wait(PartitionCase.ALL_PREPARE_ACK_LOST, 1.0) == 1.0
        assert worst_case_wait(PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBE_LOST, 1.0) == 4.0
        assert math.isinf(
            worst_case_wait(PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS, 1.0)
        )

    def test_bounds_scale_with_t(self):
        assert worst_case_wait(PartitionCase.SOME_PREPARE_PROBE_LOST, 2.0) == 8.0

    def test_cases_without_a_wait_return_zero(self):
        assert worst_case_wait(PartitionCase.NO_PREPARE_CROSSES, 1.0) == 0.0
        assert worst_case_wait(PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS, 1.0) == 0.0

    def test_bounded_cases_excludes_3222(self):
        cases = bounded_cases()
        assert PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS not in cases
        assert PartitionCase.SOME_PREPARE_PROBES_PASS in cases

    def test_case_labels_match_paper(self):
        assert PartitionCase.SOME_PREPARE_PROBES_PASS.label == "2.2.2"
        assert PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS.label == "3.2.2.2"


class TestClassifyInterleaving:
    def test_case_1(self):
        case = classify_interleaving(
            prepares_crossed=0,
            prepares_blocked=2,
            acks_blocked=0,
            commits_blocked=0,
            probes_blocked=0,
        )
        assert case is PartitionCase.NO_PREPARE_CROSSES

    def test_case_2_1(self):
        case = classify_interleaving(
            prepares_crossed=1,
            prepares_blocked=1,
            acks_blocked=1,
            commits_blocked=0,
            probes_blocked=0,
        )
        assert case is PartitionCase.SOME_PREPARE_SOME_NOT_ACK_LOST

    def test_case_2_2_1(self):
        case = classify_interleaving(
            prepares_crossed=1,
            prepares_blocked=1,
            acks_blocked=0,
            commits_blocked=0,
            probes_blocked=1,
        )
        assert case is PartitionCase.SOME_PREPARE_PROBE_LOST

    def test_case_2_2_2(self):
        case = classify_interleaving(
            prepares_crossed=1,
            prepares_blocked=1,
            acks_blocked=0,
            commits_blocked=0,
            probes_blocked=0,
        )
        assert case is PartitionCase.SOME_PREPARE_PROBES_PASS

    def test_case_3_1(self):
        case = classify_interleaving(
            prepares_crossed=2,
            prepares_blocked=0,
            acks_blocked=1,
            commits_blocked=0,
            probes_blocked=0,
        )
        assert case is PartitionCase.ALL_PREPARE_ACK_LOST

    def test_case_3_2_1(self):
        case = classify_interleaving(
            prepares_crossed=2,
            prepares_blocked=0,
            acks_blocked=0,
            commits_blocked=0,
            probes_blocked=0,
        )
        assert case is PartitionCase.ALL_PREPARE_ALL_COMMIT_PASS

    def test_case_3_2_2_1(self):
        case = classify_interleaving(
            prepares_crossed=2,
            prepares_blocked=0,
            acks_blocked=0,
            commits_blocked=1,
            probes_blocked=1,
        )
        assert case is PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBE_LOST

    def test_case_3_2_2_2(self):
        case = classify_interleaving(
            prepares_crossed=2,
            prepares_blocked=0,
            acks_blocked=0,
            commits_blocked=1,
            probes_blocked=0,
        )
        assert case is PartitionCase.ALL_PREPARE_COMMIT_LOST_PROBES_PASS


class TestTransientPolicy:
    def test_enabled_policy_commits_on_expiry(self):
        policy = TransientPolicy(enabled=True, timers=TerminationTimers(1.0))
        assert policy.expiry_action() == "commit"
        assert policy.wait_in_p == 5.0

    def test_disabled_policy_keeps_waiting(self):
        policy = TransientPolicy(enabled=False, timers=TerminationTimers(1.0))
        assert policy.expiry_action() == "wait"
