"""Tests for the formal FSA model and the protocol catalogue."""

import pytest

from repro.core import messages as m
from repro.core.catalog import (
    CATALOG,
    by_name,
    four_phase_commit,
    modified_three_phase_commit,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.fsa import (
    CommitProtocolSpec,
    MASTER,
    MASTER_ROLE,
    ProtocolSpecError,
    ReadSpec,
    RoleAutomaton,
    SendSpec,
    SLAVE_ROLE,
    Transition,
    role_automaton,
)


class TestSpecValidation:
    def test_read_spec_rejects_unknown_source(self):
        with pytest.raises(ProtocolSpecError):
            ReadSpec("yes", "nobody")

    def test_send_spec_rejects_unknown_target(self):
        with pytest.raises(ProtocolSpecError):
            SendSpec("yes", "nobody")

    def test_role_automaton_rejects_unknown_role(self):
        with pytest.raises(ProtocolSpecError):
            role_automaton(
                "observer",
                initial="q",
                transitions=[],
                commit_states=[],
                abort_states=[],
                yes_vote_states=[],
            )

    def test_role_automaton_rejects_commit_abort_overlap(self):
        with pytest.raises(ProtocolSpecError):
            RoleAutomaton(
                role=MASTER_ROLE,
                initial="q",
                states=frozenset({"q", "x"}),
                transitions=(),
                commit_states=frozenset({"x"}),
                abort_states=frozenset({"x"}),
                yes_vote_states=frozenset(),
            )

    def test_role_automaton_rejects_unknown_named_state(self):
        with pytest.raises(ProtocolSpecError):
            RoleAutomaton(
                role=MASTER_ROLE,
                initial="q",
                states=frozenset({"q"}),
                transitions=(),
                commit_states=frozenset({"zz"}),
                abort_states=frozenset(),
                yes_vote_states=frozenset(),
            )

    def test_protocol_spec_role_mismatch_rejected(self):
        master = two_phase_commit().master
        with pytest.raises(ProtocolSpecError):
            CommitProtocolSpec(name="bad", master=master, slave=master)

    def test_automaton_lookup_by_role(self):
        spec = two_phase_commit()
        assert spec.automaton(MASTER_ROLE) is spec.master
        assert spec.automaton(SLAVE_ROLE) is spec.slave
        with pytest.raises(ProtocolSpecError):
            spec.automaton("bogus")


class TestAutomatonQueries:
    def test_final_states_union(self):
        slave = three_phase_commit().slave
        assert slave.final_states == frozenset({m.COMMITTED, m.ABORTED})
        assert slave.is_final(m.COMMITTED)
        assert not slave.is_final(m.WAIT)

    def test_transitions_from(self):
        slave = three_phase_commit().slave
        sources = {t.target for t in slave.transitions_from(m.WAIT)}
        assert sources == {m.PREPARED, m.ABORTED}

    def test_transitions_reading_and_sending(self):
        master = three_phase_commit().master
        assert len(master.transitions_reading(m.YES)) == 1
        assert len(master.transitions_sending(m.PREPARE)) == 1

    def test_successors(self):
        master = two_phase_commit().master
        assert master.successors(m.WAIT) == frozenset({m.COMMITTED, m.ABORTED})

    def test_adjacent_to_commit(self):
        master = three_phase_commit().master
        assert master.adjacent_to_commit() == frozenset({m.PREPARED})

    def test_message_kinds(self):
        kinds = two_phase_commit().message_kinds()
        assert kinds == frozenset({m.REQUEST, m.XACT, m.YES, m.NO, m.COMMIT, m.ABORT})

    def test_local_states_cover_both_roles(self):
        pairs = two_phase_commit().local_states()
        assert (MASTER_ROLE, m.WAIT) in pairs
        assert (SLAVE_ROLE, m.WAIT) in pairs

    def test_transition_str_is_readable(self):
        transition = Transition(
            source="w",
            read=ReadSpec(m.COMMIT, MASTER),
            sends=(),
            target="c",
        )
        text = str(transition)
        assert "w" in text and "c" in text and m.COMMIT in text


class TestCatalog:
    def test_all_catalogued_protocols_build(self):
        for name in CATALOG:
            spec = by_name(name)
            assert spec.name == name

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("paxos")

    def test_two_phase_has_no_prepare(self):
        assert m.PREPARE not in two_phase_commit().message_kinds()

    def test_three_phase_has_prepare_and_ack(self):
        kinds = three_phase_commit().message_kinds()
        assert m.PREPARE in kinds
        assert m.ACK in kinds

    def test_modified_three_phase_adds_w_to_c_transition(self):
        base = three_phase_commit().slave
        modified = modified_three_phase_commit().slave
        def commit_reads_from_w(automaton):
            return [
                t
                for t in automaton.transitions_from(m.WAIT)
                if t.read.kind == m.COMMIT and t.target == m.COMMITTED
            ]
        assert not commit_reads_from_w(base)
        assert len(commit_reads_from_w(modified)) == 1

    def test_modified_three_phase_master_unchanged(self):
        assert modified_three_phase_commit().master == three_phase_commit().master

    def test_quorum_uses_pre_commit(self):
        kinds = quorum_commit().message_kinds()
        assert m.PRE_COMMIT in kinds
        assert m.PREPARE not in kinds

    def test_four_phase_has_both_buffering_messages(self):
        kinds = four_phase_commit().message_kinds()
        assert m.PRE_COMMIT in kinds
        assert m.PREPARE in kinds

    def test_slave_initial_state_is_q(self):
        for name in CATALOG:
            assert by_name(name).slave.initial == m.INITIAL

    def test_commit_and_abort_states_declared_for_all(self):
        for name in CATALOG:
            spec = by_name(name)
            for automaton in (spec.master, spec.slave):
                assert automaton.commit_states
                assert automaton.abort_states
