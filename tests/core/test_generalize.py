"""Tests for Theorem 10's generic termination construction."""

import pytest

from repro.core import messages as m
from repro.core.catalog import (
    four_phase_commit,
    modified_three_phase_commit,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.generalize import (
    GeneralizationError,
    check_theorem10_conditions,
    derive_termination_plan,
)


class TestDerivePlan:
    def test_three_phase_plan_uses_prepare(self):
        plan = derive_termination_plan(three_phase_commit(), 3)
        assert plan.promotion_message == m.PREPARE
        assert plan.acknowledgement == m.ACK
        assert plan.noncommittable_state == m.WAIT
        assert plan.committable_state == m.PREPARED

    def test_quorum_plan_uses_pre_commit(self):
        plan = derive_termination_plan(quorum_commit(), 3)
        assert plan.promotion_message == m.PRE_COMMIT
        assert plan.acknowledgement == m.ACK
        assert plan.committable_state == m.PRE_COMMITTED

    def test_four_phase_plan_picks_first_committable_crossing(self):
        plan = derive_termination_plan(four_phase_commit(), 3)
        assert plan.promotion_message == m.PRE_COMMIT
        assert plan.noncommittable_state == m.WAIT

    def test_two_phase_has_no_plan(self):
        with pytest.raises(GeneralizationError):
            derive_termination_plan(two_phase_commit(), 3)

    def test_modified_three_phase_still_finds_prepare(self):
        """The Fig. 8 w->c transition must not be mistaken for the message m."""
        plan = derive_termination_plan(modified_three_phase_commit(), 3)
        assert plan.promotion_message == m.PREPARE


class TestTheorem10Conditions:
    def test_three_phase_applicable(self):
        report = check_theorem10_conditions(three_phase_commit(), 3)
        assert report.structural_conditions_hold
        assert report.environment_conditions_hold
        assert report.applicable
        assert report.plan is not None

    def test_quorum_applicable(self):
        report = check_theorem10_conditions(quorum_commit(), 3)
        assert report.applicable
        assert report.plan.promotion_message == m.PRE_COMMIT

    def test_four_phase_applicable(self):
        assert check_theorem10_conditions(four_phase_commit(), 3).applicable

    def test_two_phase_not_applicable(self):
        report = check_theorem10_conditions(two_phase_commit(), 3)
        assert not report.structural_conditions_hold
        assert not report.applicable
        assert report.plan is None

    def test_environment_conditions_matter(self):
        report = check_theorem10_conditions(
            three_phase_commit(), 3, messages_returned=False
        )
        assert report.structural_conditions_hold
        assert not report.environment_conditions_hold
        assert not report.applicable

    def test_concurrent_failures_disallowed(self):
        report = check_theorem10_conditions(
            three_phase_commit(), 3, no_concurrent_failures=False
        )
        assert not report.applicable

    def test_master_failures_disallowed(self):
        report = check_theorem10_conditions(
            three_phase_commit(), 3, master_never_fails=False
        )
        assert not report.applicable

    def test_commit_adjacency_clean_for_three_phase(self):
        report = check_theorem10_conditions(three_phase_commit(), 3)
        assert report.commit_adjacency_violations == []

    def test_modified_three_phase_flags_relay_transition(self):
        """The w->c relay transition violates the *base-protocol* obligation."""
        report = check_theorem10_conditions(modified_three_phase_commit(), 3)
        assert report.commit_adjacency_violations
        assert not report.applicable
