"""Property tests for the generalized (fault-envelope) explorer.

The exhaustive checker's value rests on four properties of
:func:`repro.core.reachability.explore_model`, each pinned here:

* **Determinism** -- same spec, same graph: identical visit order, edge
  list and final states across repeated runs (and across interpreter hash
  seeds, checked via subprocess below).
* **Order-independence of the state set** -- BFS and DFS reach exactly the
  same states and edges (only the discovery order may differ).
* **Exact budgets** -- ``max_states`` raises :class:`ExplorationError`
  precisely when state ``N+1`` is discovered (a graph of exactly ``N``
  states completes), and the partial graph attached to the error is a
  *prefix* of the unbudgeted exploration (the regression for threading the
  limits through :class:`~repro.modelcheck.spec.ModelCheckSpec`).
* **Replayability** -- every counterexample trace the checker emits steps
  through legal successors only (each edge is among
  :func:`enumerate_successors` of its source) and ends at the witness.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.core.catalog import three_phase_commit, two_phase_commit
from repro.core.reachability import (
    BFS,
    DFS,
    FAILURE_FREE,
    FAULT_ENVELOPES,
    PARTITION,
    SINGLE_CRASH,
    ExplorationError,
    enumerate_successors,
    explore,
    explore_model,
    simple_splits,
)
from repro.core.rules import augment_with_rules

# (spec factory, augmentation?) for every FSA protocol shape the checker
# resolves; parametrizing over these keeps each property protocol-agnostic.
SETUPS = {
    "2pc": (two_phase_commit, False),
    "extended-2pc": (two_phase_commit, True),
    "3pc": (three_phase_commit, False),
    "naive-3pc": (three_phase_commit, True),
}


def _explore(name, *, fault, order=BFS, **kwargs):
    factory, augmented = SETUPS[name]
    spec = factory()
    augmentation = augment_with_rules(spec, 3) if augmented else None
    return explore_model(
        spec, 3, augmentation=augmentation, fault=fault, order=order, **kwargs
    )


@pytest.mark.parametrize("name", sorted(SETUPS))
@pytest.mark.parametrize("fault", FAULT_ENVELOPES)
class TestEnvelopeExploration:
    def test_deterministic_across_runs(self, name, fault):
        first = _explore(name, fault=fault)
        second = _explore(name, fault=fault)
        assert first.visit_order == second.visit_order
        assert first.edges == second.edges
        assert first.final_states() == second.final_states()

    def test_bfs_and_dfs_reach_the_same_graph(self, name, fault):
        bfs = _explore(name, fault=fault, order=BFS)
        dfs = _explore(name, fault=fault, order=DFS)
        assert bfs.states == dfs.states
        assert set(bfs.edges) == set(dfs.edges)
        assert bfs.complete and dfs.complete

    def test_budget_raises_exactly_at_the_limit(self, name, fault):
        full = _explore(name, fault=fault)
        n = full.state_count
        # A budget of exactly the graph size completes...
        exact = _explore(name, fault=fault, max_states=n)
        assert exact.complete and exact.state_count == n
        # ...and one state less raises, with the partial graph attached.
        with pytest.raises(ExplorationError) as excinfo:
            _explore(name, fault=fault, max_states=n - 1)
        partial = excinfo.value.partial
        assert partial is not None
        assert partial.state_count == n - 1
        assert not partial.complete

    def test_budgeted_visit_order_is_a_prefix_of_unbudgeted(self, name, fault):
        """The fix+pin regression: limits truncate, they never reorder."""
        full = _explore(name, fault=fault)
        for budget in (1, 5, full.state_count // 2, full.state_count - 1):
            if budget < 1:
                continue
            try:
                partial = _explore(name, fault=fault, max_states=budget)
            except ExplorationError as exc:
                partial = exc.partial
            assert partial.visit_order == full.visit_order[: budget]

    def test_max_depth_truncates_and_clears_complete(self, name, fault):
        full = _explore(name, fault=fault)
        depth = 3
        truncated = _explore(name, fault=fault, max_depth=depth)
        if full.frontier_depth <= depth:
            assert truncated.complete
        else:
            assert not truncated.complete
            assert truncated.unexpanded
            assert truncated.frontier_depth <= depth
        assert truncated.state_count <= full.state_count

    def test_every_edge_is_a_legal_successor_of_its_source(self, name, fault):
        """Each recorded edge replays through enumerate_successors."""
        factory, augmented = SETUPS[name]
        spec = factory()
        augmentation = augment_with_rules(spec, 3) if augmented else None
        graph = explore_model(
            spec, 3, augmentation=augmentation, fault=fault
        )
        for edge in graph.edges[:200]:
            successors = enumerate_successors(
                spec,
                3,
                edge.source,
                augmentation=augmentation,
                fault=fault,
            )
            assert edge in successors, edge.describe()


def test_failure_free_envelope_matches_the_legacy_explorer():
    """explore() is explore_model() under the failure-free envelope."""
    for name in ("2pc", "3pc"):
        factory, _ = SETUPS[name]
        legacy = explore(factory(), 3)
        modern = _explore(name, fault=FAILURE_FREE)
        assert legacy.visit_order == modern.visit_order
        assert legacy.edges == modern.edges


def test_fault_envelopes_strictly_grow_the_graph():
    """Crash and partition envelopes only add states (over-approximation)."""
    for name in sorted(SETUPS):
        base = _explore(name, fault=FAILURE_FREE)
        for fault in (SINGLE_CRASH, PARTITION):
            enveloped = _explore(name, fault=fault)
            assert base.states <= enveloped.states
            assert set(base.edges) <= set(enveloped.edges)


def test_simple_splits_enumeration():
    assert simple_splits(2) == [((1,), (2,))]
    assert simple_splits(3) == [
        ((1, 3), (2,)),
        ((1, 2), (3,)),
        ((1,), (2, 3)),
    ]


def test_checker_counterexamples_replay_to_the_witness():
    """Traces are step-by-step replayable and end at the violating state."""
    from repro.modelcheck.checker import check_model
    from repro.modelcheck.protocols import resolve_protocol
    from repro.modelcheck.spec import ModelCheckSpec

    for protocol, fault in (
        ("naive-extended-three-phase-commit", PARTITION),
        ("naive-extended-three-phase-commit", SINGLE_CRASH),
        ("extended-two-phase-commit", PARTITION),
        ("two-phase-commit", SINGLE_CRASH),
    ):
        spec = ModelCheckSpec(n_sites=3, fault=fault)
        result = check_model(protocol, spec)
        fsa_spec, augmentation = resolve_protocol(protocol, 3)
        violated = [v for v in result.verdicts.values() if not v.holds]
        assert violated, f"{protocol}/{fault} should violate an invariant"
        for verdict in violated:
            assert verdict.trace, verdict.name
            current = result.graph.initial
            for edge in verdict.trace:
                assert edge.source == current
                successors = enumerate_successors(
                    fsa_spec,
                    3,
                    current,
                    augmentation=augmentation,
                    fault=fault,
                )
                assert edge in successors, edge.describe()
                current = edge.target
            assert current == verdict.witness


_HASHSEED_SCRIPT = """
from repro.modelcheck.checker import check_model
from repro.modelcheck.spec import ModelCheckSpec
import sys

spec = ModelCheckSpec(n_sites=3, fault="partition")
summary = check_model("naive-extended-three-phase-commit", spec).to_summary(
    spec_hash="hashseed-probe"
)
sys.stdout.buffer.write(summary.to_json_bytes())
"""


def test_exploration_is_hash_seed_independent():
    """Frozenset iteration must never leak into the graph or the traces."""
    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    outputs = []
    for seed in ("1", "2"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = str(src)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True,
            env=env,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert b'"kind":"modelcheck"' in outputs[0]
