"""Tests for global-state reachability, concurrency sets and sender sets.

These tests pin the facts the paper states in Sections 2-3 against the
mechanically computed sets:

* the slave wait state of 2PC has both a commit and an abort in its
  concurrency set;
* in 3PC, ``abort in C(w_slave)``, ``commit in C(p_slave)`` and
  ``p_master in C(w_slave)`` (the exact facts behind the Section 3
  counterexample);
* committability matches the paper's classification.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import messages as m
from repro.core.catalog import (
    four_phase_commit,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.concurrency import analyze, format_analysis
from repro.core.fsa import MASTER_ROLE, SLAVE_ROLE
from repro.core.reachability import ExplorationError, explore


class TestExploration:
    def test_requires_at_least_two_sites(self):
        with pytest.raises(ValueError):
            explore(two_phase_commit(), 1)

    def test_two_phase_three_sites_state_count_is_finite(self):
        result = explore(two_phase_commit(), 3)
        assert 10 < result.state_count < 200

    def test_initial_state_has_only_the_request_outstanding(self):
        result = explore(two_phase_commit(), 3)
        assert len(result.initial.outstanding) == 1
        assert next(iter(result.initial.outstanding)).kind == m.REQUEST

    def test_every_final_global_state_is_consistent(self):
        """In failure-free executions no global state mixes commit and abort."""
        for spec in (two_phase_commit(), three_phase_commit(), quorum_commit()):
            result = explore(spec, 3)
            for state in result.final_states():
                decisions = set()
                for site in range(1, 4):
                    automaton = spec.master if site == 1 else spec.slave
                    local = state.local(site)
                    if local in automaton.commit_states:
                        decisions.add("commit")
                    if local in automaton.abort_states:
                        decisions.add("abort")
                assert decisions != {"commit", "abort"}, f"{spec.name}: {state}"

    def test_commit_terminal_state_reachable(self):
        result = explore(three_phase_commit(), 3)
        assert any(
            all(state.local(site) == m.COMMITTED for site in range(1, 4))
            for state in result.states
        )

    def test_abort_terminal_state_reachable(self):
        result = explore(three_phase_commit(), 3)
        assert any(
            all(state.local(site) == m.ABORTED for site in range(1, 4))
            for state in result.states
        )

    def test_max_states_guard(self):
        with pytest.raises(ExplorationError):
            explore(four_phase_commit(), 4, max_states=5)

    def test_global_state_accessors(self):
        result = explore(two_phase_commit(), 2)
        state = result.initial
        assert state.n_sites == 2
        assert state.local(1) == m.INITIAL
        assert not state.all_voted()
        assert state.messages_to(1, m.REQUEST)
        assert "q" in str(state)

    def test_role_of(self):
        result = explore(two_phase_commit(), 3)
        assert result.role_of(1) == MASTER_ROLE
        assert result.role_of(2) == SLAVE_ROLE


class TestTwoPhaseConcurrency:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze(two_phase_commit(), 3)

    def test_slave_wait_has_commit_and_abort_concurrent(self, analysis):
        """The fact behind Lemma 1's indictment of 2PC."""
        assert analysis.has_commit_in_concurrency_set(SLAVE_ROLE, m.WAIT)
        assert analysis.has_abort_in_concurrency_set(SLAVE_ROLE, m.WAIT)

    def test_master_wait_has_no_commit_concurrent(self, analysis):
        assert not analysis.has_commit_in_concurrency_set(MASTER_ROLE, m.WAIT)

    def test_commit_states_are_committable(self, analysis):
        assert analysis.is_committable(MASTER_ROLE, m.COMMITTED)
        assert analysis.is_committable(SLAVE_ROLE, m.COMMITTED)

    def test_wait_states_are_noncommittable(self, analysis):
        assert not analysis.is_committable(MASTER_ROLE, m.WAIT)
        assert not analysis.is_committable(SLAVE_ROLE, m.WAIT)

    def test_sender_set_of_master_wait_is_slave_q(self, analysis):
        assert analysis.sender_set(MASTER_ROLE, m.WAIT) == {(SLAVE_ROLE, m.INITIAL)}

    def test_sender_set_of_slave_wait_is_master_wait(self, analysis):
        assert analysis.sender_set(SLAVE_ROLE, m.WAIT) == {(MASTER_ROLE, m.WAIT)}

    def test_format_analysis_mentions_both_roles(self, analysis):
        text = format_analysis(analysis)
        assert "master:w" in text
        assert "slave:w" in text
        assert "noncommittable" in text


class TestThreePhaseConcurrency:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze(three_phase_commit(), 3)

    def test_abort_in_concurrency_set_of_slave_wait(self, analysis):
        """Section 3: ``abort in C(w3)``."""
        assert analysis.has_abort_in_concurrency_set(SLAVE_ROLE, m.WAIT)

    def test_no_commit_in_concurrency_set_of_slave_wait(self, analysis):
        assert not analysis.has_commit_in_concurrency_set(SLAVE_ROLE, m.WAIT)

    def test_commit_in_concurrency_set_of_slave_prepared(self, analysis):
        """Section 3: ``commit in C(p2)``."""
        assert analysis.has_commit_in_concurrency_set(SLAVE_ROLE, m.PREPARED)

    def test_master_prepared_concurrent_with_slave_wait(self, analysis):
        """Section 3: ``p2 in C(w3)`` (stated with sites swapped for roles)."""
        assert (MASTER_ROLE, m.PREPARED) in analysis.concurrency_set(SLAVE_ROLE, m.WAIT)
        assert (SLAVE_ROLE, m.PREPARED) in analysis.concurrency_set(SLAVE_ROLE, m.WAIT)

    def test_no_state_mixes_commit_and_abort_in_concurrency_set(self, analysis):
        for role, state in analysis.local_states():
            both = analysis.has_commit_in_concurrency_set(
                role, state
            ) and analysis.has_abort_in_concurrency_set(role, state)
            assert not both, f"{role}:{state}"

    def test_prepared_states_are_committable(self, analysis):
        """Matches the paper's committable classification of 3PC."""
        assert analysis.is_committable(MASTER_ROLE, m.PREPARED)
        assert analysis.is_committable(SLAVE_ROLE, m.PREPARED)

    def test_wait_and_initial_are_noncommittable(self, analysis):
        for role in (MASTER_ROLE, SLAVE_ROLE):
            assert not analysis.is_committable(role, m.INITIAL)
            assert not analysis.is_committable(role, m.WAIT)

    def test_slave_prepared_receives_from_master_prepared(self, analysis):
        assert (MASTER_ROLE, m.PREPARED) in analysis.sender_set(SLAVE_ROLE, m.PREPARED)


class TestScalingWithSites:
    @pytest.mark.parametrize("n_sites", [2, 3, 4])
    def test_lemma_relevant_facts_stable_across_sizes(self, n_sites):
        analysis = analyze(three_phase_commit(), n_sites)
        assert not analysis.has_commit_in_concurrency_set(SLAVE_ROLE, m.WAIT)
        assert analysis.is_committable(SLAVE_ROLE, m.PREPARED)

    @pytest.mark.parametrize("n_sites", [3, 4, 5])
    def test_two_phase_defect_present_at_every_multisite_size(self, n_sites):
        analysis = analyze(two_phase_commit(), n_sites)
        assert analysis.has_commit_in_concurrency_set(SLAVE_ROLE, m.WAIT)
        # another slave may still vote no while this one waits -> abort concurrent
        assert analysis.has_abort_in_concurrency_set(SLAVE_ROLE, m.WAIT)

    def test_two_site_two_phase_wait_has_no_abort_concurrent(self):
        """With a single slave there is no other voter, which is exactly why the
        extended 2PC of Fig. 2 is resilient for two sites but not more."""
        analysis = analyze(two_phase_commit(), 2)
        assert analysis.has_commit_in_concurrency_set(SLAVE_ROLE, m.WAIT)
        assert not analysis.has_abort_in_concurrency_set(SLAVE_ROLE, m.WAIT)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=2, max_value=5))
    def test_property_state_count_grows_with_sites(self, n_sites):
        smaller = explore(two_phase_commit(), n_sites).state_count
        larger = explore(two_phase_commit(), n_sites + 1).state_count
        assert larger > smaller
