"""Tests for metric collection and text reporting."""

from repro.analysis.timing import TimingMeasurement
from repro.metrics.collectors import collect, compare_protocols
from repro.metrics.reporting import format_comparison_table, format_table, format_timing_table
from repro.protocols.registry import create_protocol
from repro.protocols.runner import ScenarioSpec, run_scenario
from repro.sim.partition import PartitionSchedule


def run(name, **kwargs):
    return run_scenario(create_protocol(name), ScenarioSpec(**kwargs))


class TestCollect:
    def test_summary_for_clean_runs(self):
        results = [run("terminating-three-phase-commit") for _ in range(2)]
        summary = collect(results)
        assert summary.runs == 2
        assert summary.resilient
        assert summary.commit_rate == 1.0
        assert summary.mean_messages > 0
        row = summary.row()
        assert row["resilient"] == "yes"
        assert row["violations"] == 0

    def test_summary_flags_violations(self):
        partition = PartitionSchedule.simple(2.25, [1, 2], [3])
        results = [run("naive-extended-three-phase-commit", partition=partition)]
        summary = collect(results)
        assert not summary.resilient
        assert summary.row()["resilient"] == "NO"

    def test_compare_protocols_orders_rows(self):
        batches = {
            "two-phase-commit": [run("two-phase-commit")],
            "terminating-three-phase-commit": [run("terminating-three-phase-commit")],
        }
        comparison = compare_protocols(batches)
        assert len(comparison.rows()) == 2
        assert "terminating-three-phase-commit" in comparison.resilient_protocols()


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "bb": "xx"}, {"a": 22, "bb": "y"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([], title="nothing") == "nothing"
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text
        assert "a" not in text.splitlines()[0]

    def test_format_comparison_table(self):
        comparison = compare_protocols({"two-phase-commit": [run("two-phase-commit")]})
        text = format_comparison_table(comparison, title="cmp")
        assert "cmp" in text
        assert "two-phase-commit" in text

    def test_format_timing_table_marks_exceeded(self):
        measurements = [
            TimingMeasurement(name="ok", measured=1.0, bound=2.0, unit=1.0),
            TimingMeasurement(name="bad", measured=3.0, bound=2.0, unit=1.0),
        ]
        text = format_timing_table(measurements, title="timing")
        assert "timing" in text
        assert "NO" in text
        assert "yes" in text
