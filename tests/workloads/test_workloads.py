"""Tests for workload generation and sweep helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.partitions import (
    random_partition_schedule,
    random_simple_split,
    random_transient_schedule,
)
from repro.workloads.sweeps import ParameterSweep, cartesian
from repro.workloads.transactions import (
    TransactionMix,
    WorkloadConfig,
    generate_arrivals,
    generate_transactions,
    key_weights,
    transaction_stream,
)

import random


class TestTransactionMix:
    def test_defaults(self):
        mix = TransactionMix()
        assert 0.0 <= mix.read_fraction <= 1.0
        assert mix.operations_per_site >= 1

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ValueError):
            TransactionMix(read_fraction=1.5)


class TestWorkloadConfigValidation:
    def test_rejects_master_outside_site_range(self):
        with pytest.raises(ValueError, match="master"):
            WorkloadConfig(n_sites=3, master=4)

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError, match="keys"):
            WorkloadConfig(keys=())

    def test_rejects_single_participant(self):
        # The generator always emits master + >= 1 slave; a value of 1
        # would be silently generated as 2, so it is rejected up front.
        with pytest.raises(ValueError, match="participants_per_transaction"):
            WorkloadConfig(n_sites=3, participants_per_transaction=1)

    def test_rejects_zero_operations(self):
        with pytest.raises(ValueError):
            TransactionMix(operations_per_site=0)


class TestGenerateTransactions:
    def test_count_matches_config(self):
        config = WorkloadConfig(n_transactions=7)
        assert len(generate_transactions(config)) == 7

    def test_deterministic_given_seed(self):
        config = WorkloadConfig(n_transactions=5, seed=11)
        a = generate_transactions(config)
        b = generate_transactions(config)
        assert [t.transaction_id for t in a] == [t.transaction_id for t in b]
        assert [t.participants for t in a] == [t.participants for t in b]

    def test_different_seeds_differ(self):
        base = WorkloadConfig(
            n_transactions=20, participants_per_transaction=2, n_sites=5
        )
        a = generate_transactions(WorkloadConfig(**{**base.__dict__, "seed": 1}))
        b = generate_transactions(WorkloadConfig(**{**base.__dict__, "seed": 2}))
        assert [t.participants for t in a] != [t.participants for t in b]

    def test_all_sites_participate_by_default(self):
        config = WorkloadConfig(n_sites=4, n_transactions=3)
        for transaction in generate_transactions(config):
            assert transaction.participants == (1, 2, 3, 4)

    def test_partial_participation_respects_master(self):
        config = WorkloadConfig(
            n_sites=6, n_transactions=10, participants_per_transaction=3, seed=4
        )
        for transaction in generate_transactions(config):
            assert transaction.master == 1
            assert 1 in transaction.participants
            assert len(transaction.participants) == 3

    def test_keys_drawn_from_configured_keyspace(self):
        config = WorkloadConfig(keys=("k1", "k2"), n_transactions=5)
        for transaction in generate_transactions(config):
            for operation in transaction.operations:
                assert operation.key in ("k1", "k2")

    def test_read_fraction_zero_generates_only_writes(self):
        config = WorkloadConfig(
            mix=TransactionMix(read_fraction=0.0), n_transactions=5
        )
        for transaction in generate_transactions(config):
            assert all(op.kind.value == "write" for op in transaction.operations)

    def test_stream_matches_list(self):
        config = WorkloadConfig(n_transactions=4)
        assert [t.transaction_id for t in transaction_stream(config)] == [
            t.transaction_id for t in generate_transactions(config)
        ]


class TestHotspotSkew:
    def test_zero_hotspot_preserves_the_uniform_stream(self):
        # hotspot=0 must keep PR 3's byte-exact random draws.
        uniform = generate_transactions(WorkloadConfig(n_transactions=10, seed=3))
        skewless = generate_transactions(
            WorkloadConfig(n_transactions=10, seed=3, hotspot=0.0)
        )
        assert [t.operations for t in uniform] == [t.operations for t in skewless]
        assert key_weights(WorkloadConfig(hotspot=0.0)) is None

    def test_weights_are_zipf_like(self):
        weights = key_weights(WorkloadConfig(hotspot=1.0, keys=("a", "b", "c", "d")))
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]

    def test_skew_concentrates_traffic_on_the_hot_key(self):
        keys = tuple(f"k{i}" for i in range(8))
        def hot_share(hotspot):
            config = WorkloadConfig(
                n_transactions=200, keys=keys, hotspot=hotspot, seed=1
            )
            ops = [
                op for t in generate_transactions(config) for op in t.operations
            ]
            return sum(1 for op in ops if op.key == "k0") / len(ops)
        assert hot_share(2.0) > hot_share(0.8) > hot_share(0.0)
        assert hot_share(2.0) > 0.5

    def test_rejects_negative_hotspot(self):
        with pytest.raises(ValueError, match="hotspot"):
            WorkloadConfig(hotspot=-0.1)


class TestArrivalProcesses:
    def test_uniform_is_evenly_spaced(self):
        assert generate_arrivals(4, mean_gap=0.5) == [0.0, 0.5, 1.0, 1.5]

    def test_poisson_is_seed_deterministic_and_open_loop(self):
        a = generate_arrivals(20, mean_gap=1.0, process="poisson", seed=5)
        b = generate_arrivals(20, mean_gap=1.0, process="poisson", seed=5)
        other = generate_arrivals(20, mean_gap=1.0, process="poisson", seed=6)
        assert a == b
        assert a != other
        assert a[0] == 0.0
        assert a == sorted(a)
        gaps = [later - earlier for earlier, later in zip(a, a[1:])]
        assert min(gaps) != max(gaps)  # genuinely bursty, not uniform

    def test_poisson_mean_gap_is_roughly_right(self):
        arrivals = generate_arrivals(2000, mean_gap=0.5, process="poisson", seed=0)
        mean = arrivals[-1] / (len(arrivals) - 1)
        assert 0.4 < mean < 0.6

    def test_rejects_unknown_process_and_bad_gap(self):
        with pytest.raises(ValueError, match="arrival process"):
            generate_arrivals(3, mean_gap=1.0, process="bursty")
        with pytest.raises(ValueError, match="mean_gap"):
            generate_arrivals(3, mean_gap=0.0)


class TestRandomPartitions:
    def test_random_split_keeps_master_in_g1(self):
        rng = random.Random(3)
        for _ in range(20):
            spec = random_simple_split(5, rng)
            assert spec.group_of(1) is not None
            assert spec.is_simple

    def test_random_schedule_deterministic_by_seed(self):
        a = random_partition_schedule(4, seed=9)
        b = random_partition_schedule(4, seed=9)
        assert [e.time for e in a] == [e.time for e in b]

    def test_transient_schedule_has_heal(self):
        schedule = random_transient_schedule(4, seed=2)
        events = list(schedule)
        assert len(events) == 2
        assert events[1].is_heal
        assert events[1].time > events[0].time

    @given(st.integers(min_value=0, max_value=200))
    def test_property_onset_within_configured_range(self, seed):
        schedule = random_partition_schedule(3, seed=seed, earliest=1.0, latest=2.0)
        onset = next(iter(schedule)).time
        assert 1.0 <= onset <= 2.0


class TestSweeps:
    def test_cartesian_product(self):
        points = cartesian({"a": [1, 2], "b": ["x"]})
        assert points == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_cartesian_empty(self):
        assert cartesian({}) == [{}]

    def test_cartesian_preserves_declaration_order(self):
        # "zeta" is declared first, so it varies slowest and leads every
        # point's key order -- no alphabetical resort.
        points = cartesian({"zeta": [1, 2], "alpha": ["x", "y"]})
        assert [list(p) for p in points] == [["zeta", "alpha"]] * 4
        assert points == [
            {"zeta": 1, "alpha": "x"},
            {"zeta": 1, "alpha": "y"},
            {"zeta": 2, "alpha": "x"},
            {"zeta": 2, "alpha": "y"},
        ]

    def test_parameter_sweep_len_and_iter(self):
        sweep = ParameterSweep("s", {"n_sites": [3, 4], "seed": [0, 1, 2]})
        assert len(sweep) == 6
        assert all("n_sites" in point for point in sweep)
