"""Unit tests for the MODELCHECK layer: spec, protocols, checker, summary, sink.

The verdict-matrix pins restate the paper's results as exhaustive facts:

* every checkable protocol is consistent failure-free (Section 2);
* at two sites, the Rule (a)/(b) extensions are resilient to a single
  crash or partition (the two-site correctness theorem);
* beyond two sites both extensions are refuted (Section 3, Observations
  1 and 2), while the unextended protocols block instead of erring.
"""

import pytest

from repro.core.reachability import (
    FAILURE_FREE,
    FAULT_ENVELOPES,
    PARTITION,
    SINGLE_CRASH,
    ExplorationError,
)
from repro.modelcheck.checker import (
    BLOCKING_INVARIANT,
    INVARIANTS,
    SAFETY_INVARIANTS,
    check_model,
    trace_steps,
)
from repro.modelcheck.protocols import (
    UncheckableProtocolError,
    checkable_protocols,
    resolve_protocol,
)
from repro.modelcheck.sink import ModelCheckSink
from repro.modelcheck.spec import ModelCheckSpec
from repro.modelcheck.summary import ModelCheckSummary


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = ModelCheckSpec()
        assert spec.n_sites == 3
        assert spec.fault == FAILURE_FREE
        assert spec.no_voters is None

    def test_rejects_single_site(self):
        with pytest.raises(ValueError, match="at least 2 sites"):
            ModelCheckSpec(n_sites=1)

    def test_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="fault"):
            ModelCheckSpec(fault="meteor-strike")

    def test_rejects_non_positive_budgets(self):
        with pytest.raises(ValueError, match="max_states"):
            ModelCheckSpec(max_states=0)
        with pytest.raises(ValueError, match="max_depth"):
            ModelCheckSpec(max_depth=0)

    def test_rejects_master_no_voter(self):
        with pytest.raises(ValueError, match="master"):
            ModelCheckSpec(no_voters=frozenset({1}))

    def test_rejects_out_of_range_no_voter(self):
        with pytest.raises(ValueError):
            ModelCheckSpec(n_sites=3, no_voters=frozenset({4}))


class TestProtocolResolution:
    def test_checkable_protocols_are_sorted_and_stable(self):
        names = checkable_protocols()
        assert list(names) == sorted(names)
        assert "two-phase-commit" in names
        assert "naive-extended-three-phase-commit" in names

    def test_unextended_protocols_resolve_without_augmentation(self):
        spec, augmentation = resolve_protocol("two-phase-commit", 3)
        assert augmentation is None
        assert spec.name == "two-phase-commit"

    def test_extended_protocols_resolve_with_rules(self):
        _, augmentation = resolve_protocol("extended-two-phase-commit", 3)
        assert augmentation is not None
        assert augmentation.timeout_action

    def test_terminating_protocols_are_uncheckable(self):
        with pytest.raises(UncheckableProtocolError) as excinfo:
            resolve_protocol("terminating-three-phase-commit", 3)
        assert "three-phase-commit" in str(excinfo.value)

    def test_unknown_protocol_is_uncheckable(self):
        with pytest.raises(UncheckableProtocolError):
            resolve_protocol("no-such-protocol", 3)


@pytest.mark.parametrize("protocol", checkable_protocols())
def test_every_protocol_is_consistent_failure_free(protocol):
    result = check_model(protocol, ModelCheckSpec(fault=FAILURE_FREE))
    summary = result.to_summary(spec_hash="t")
    assert summary.verdict == "consistent"
    assert summary.complete
    assert all(summary.invariant_holds(name) for name in INVARIANTS)


@pytest.mark.parametrize("protocol", checkable_protocols())
def test_no_voter_blocks_commit_failure_free(protocol):
    """Without timeouts a scripted no vote makes commit unreachable."""
    spec = ModelCheckSpec(fault=FAILURE_FREE, no_voters=frozenset({2}))
    result = check_model(protocol, spec)
    assert result.to_summary(spec_hash="t").invariant_holds(
        "commit-requires-votes"
    )


@pytest.mark.parametrize(
    "protocol", ("two-phase-commit", "three-phase-commit", "quorum-commit")
)
@pytest.mark.parametrize("fault", FAULT_ENVELOPES)
def test_no_voter_blocks_commit_without_augmentation(protocol, fault):
    """The unextended protocols have no timeout path around a no vote."""
    spec = ModelCheckSpec(fault=fault, no_voters=frozenset({2}))
    result = check_model(protocol, spec)
    assert result.to_summary(spec_hash="t").invariant_holds(
        "commit-requires-votes"
    )


@pytest.mark.parametrize(
    "protocol", ("extended-two-phase-commit",)
)
def test_extended_protocol_can_timeout_commit_past_a_no_voter(protocol):
    """Observation 1 in miniature: a separated slave timeout-commits in w
    even though another slave voted no -- the checker must find it."""
    spec = ModelCheckSpec(fault=PARTITION, no_voters=frozenset({2}))
    result = check_model(protocol, spec)
    assert not result.to_summary(spec_hash="t").invariant_holds(
        "commit-requires-votes"
    )


@pytest.mark.parametrize(
    "protocol", ("extended-two-phase-commit", "naive-extended-three-phase-commit")
)
@pytest.mark.parametrize("fault", (SINGLE_CRASH, PARTITION))
def test_two_site_extensions_are_resilient(protocol, fault):
    """The two-site correctness theorem, machine-checked exhaustively."""
    result = check_model(protocol, ModelCheckSpec(n_sites=2, fault=fault))
    summary = result.to_summary(spec_hash="t")
    assert summary.verdict == "consistent", summary.summary()


@pytest.mark.parametrize(
    "protocol,fault,expect_violated",
    [
        # Observation 2: the naive 3PC extension errs beyond two sites.
        ("naive-extended-three-phase-commit", SINGLE_CRASH, True),
        ("naive-extended-three-phase-commit", PARTITION, True),
        # Observation 1: extended 2PC errs beyond two sites.
        ("extended-two-phase-commit", SINGLE_CRASH, True),
        ("extended-two-phase-commit", PARTITION, True),
        # The unextended protocols never err -- they block.
        ("two-phase-commit", SINGLE_CRASH, False),
        ("two-phase-commit", PARTITION, False),
        ("three-phase-commit", SINGLE_CRASH, False),
        ("three-phase-commit", PARTITION, False),
        ("quorum-commit", SINGLE_CRASH, False),
        ("quorum-commit", PARTITION, False),
    ],
)
def test_three_site_verdict_matrix(protocol, fault, expect_violated):
    result = check_model(protocol, ModelCheckSpec(n_sites=3, fault=fault))
    summary = result.to_summary(spec_hash="t")
    if expect_violated:
        assert summary.atomicity_violated, summary.summary()
        assert not summary.invariant_holds("same-decision")
        assert not summary.invariant_holds("no-commit-after-abort")
    else:
        assert not summary.atomicity_violated, summary.summary()
        assert summary.blocked, summary.summary()
        assert not summary.invariant_holds(BLOCKING_INVARIANT)


def test_naive_3pc_counterexample_shape_matches_the_paper():
    """One slave aborts, another commits out of the prepared state."""
    result = check_model(
        "naive-extended-three-phase-commit",
        ModelCheckSpec(n_sites=3, fault=PARTITION),
    )
    verdict = result.verdict_for("same-decision")
    assert not verdict.holds
    locals_ = verdict.witness.locals
    assert "c" in locals_ and "a" in locals_
    # BFS discovery makes the trace minimal: no shorter path reaches the
    # witness (depth == trace length by construction).
    assert len(verdict.trace) == result.graph.depth[verdict.witness]


def test_budget_propagates_through_check_model():
    with pytest.raises(ExplorationError):
        check_model(
            "naive-extended-three-phase-commit",
            ModelCheckSpec(fault=PARTITION, max_states=10),
        )


def test_max_depth_marks_summary_incomplete():
    result = check_model(
        "two-phase-commit", ModelCheckSpec(fault=SINGLE_CRASH, max_depth=2)
    )
    summary = result.to_summary(spec_hash="t")
    assert not summary.complete
    assert summary.frontier_depth <= 2


class TestSummaryCodec:
    def _summary(self):
        result = check_model(
            "naive-extended-three-phase-commit",
            ModelCheckSpec(n_sites=3, fault=PARTITION),
        )
        return result.to_summary(spec_hash="abc123")

    def test_round_trip(self):
        summary = self._summary()
        clone = ModelCheckSummary.from_json_bytes(summary.to_json_bytes())
        assert clone == summary
        assert clone.to_json_bytes() == summary.to_json_bytes()

    def test_kind_tag(self):
        payload = self._summary().to_json_dict()
        assert payload["kind"] == "modelcheck"

    def test_verdict_precedence(self):
        base = ModelCheckSummary(
            protocol="p", spec_hash="h", seed=0, n_sites=3, fault=FAILURE_FREE
        )
        base.invariants = {name: "holds" for name in INVARIANTS}
        assert base.verdict == "consistent"
        base.invariants[BLOCKING_INVARIANT] = "violated"
        assert base.verdict == "blocked"
        base.invariants[SAFETY_INVARIANTS[0]] = "violated"
        assert base.verdict == "violated"

    def test_counterexample_formatting(self):
        summary = self._summary()
        text = summary.format_counterexample("same-decision")
        assert "site" in text
        assert summary.format_counterexample("no-blocking").startswith(
            "  (no counterexample"
        )


class TestSink:
    def test_rows_render_violations_with_trace_length(self):
        sink = ModelCheckSink()
        result = check_model(
            "naive-extended-three-phase-commit",
            ModelCheckSpec(n_sites=3, fault=PARTITION),
        )
        sink.accept(0, result.to_summary(spec_hash="t"))
        (row,) = sink.rows()
        steps = len(result.to_summary(spec_hash="t").counterexample("same-decision"))
        assert row["same-decision"] == f"violated@{steps}"
        assert row["non-blocking"] == "holds"

    def test_ignores_foreign_summaries(self):
        sink = ModelCheckSink()
        sink.accept(0, object())
        assert sink.rows() == []

    def test_truncated_runs_are_marked(self):
        sink = ModelCheckSink()
        result = check_model(
            "two-phase-commit", ModelCheckSpec(fault=SINGLE_CRASH, max_depth=2)
        )
        sink.accept(0, result.to_summary(spec_hash="t"))
        (row,) = sink.rows()
        assert "(truncated)" in row["fault"]


def test_trace_steps_serialization():
    result = check_model(
        "naive-extended-three-phase-commit",
        ModelCheckSpec(n_sites=3, fault=PARTITION),
    )
    trace = result.verdict_for("same-decision").trace
    steps = trace_steps(trace)
    assert len(steps) == len(trace)
    assert [s["step"] for s in steps] == list(range(len(steps)))
    assert {s["action"] for s in steps} <= {
        "step",
        "crash",
        "partition",
        "timeout",
        "undeliverable",
    }
    assert all(len(s["locals"]) == 3 for s in steps)
