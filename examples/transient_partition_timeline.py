"""Section 6 walkthrough: the one case a permanent-partition protocol cannot end.

Case (3.2.2.2): every prepare and every ack crossed the boundary, the master
committed, but the commit addressed to an isolated slave bounced -- and the
network heals before that slave probes, so its probe reaches a master that
(in the Section 5 protocol) has nothing left to say.  The slave waits
forever.  The Section 6 rule -- commit after waiting 5T following the probe
-- terminates it consistently.

The example prints the full message timeline of both variants.

Run with::

    python examples/transient_partition_timeline.py
"""

from repro.protocols import ScenarioSpec, create_protocol, run_scenario
from repro.sim.partition import PartitionSchedule

INTERESTING = {
    "send",
    "deliver",
    "deliver-undeliverable",
    "bounce",
    "partition",
    "heal",
    "timed-out-in-p",
    "timed-out-in-w",
    "probe-window-open",
    "probe-window-closed",
    "late-probe-ignored",
    "decision",
}


def print_timeline(result) -> None:
    for record in result.trace.records():
        if record.category not in INTERESTING:
            continue
        site = f"site {record.site}" if record.site is not None else "network"
        extra = {k: v for k, v in record.detail.items() if k not in ("envelope_id", "latency")}
        print(f"  t={record.time:5.2f}  {site:<8} {record.category:<22} {extra}")


def run_variant(protocol_name: str, label: str):
    partition = PartitionSchedule.transient(4.25, 5.25, [1, 2], [3])
    result = run_scenario(
        create_protocol(protocol_name),
        ScenarioSpec(n_sites=3, partition=partition, horizon=30.0),
    )
    print(f"--- {label} ---")
    print_timeline(result)
    print(f"  outcome: {result.summary()}\n")
    return result


def main() -> None:
    print("Case 3.2.2.2: commit to site 3 bounces at t=4.25T, network heals at t=5.25T.\n")
    blocked = run_variant(
        "terminating-three-phase-commit-no-transient",
        "Section 5 protocol (assumes the partition is permanent)",
    )
    fixed = run_variant(
        "terminating-three-phase-commit",
        "Section 6 protocol (commit after waiting 5T in p)",
    )
    print(
        f"Without the rule site 3 never decides (blocked = {blocked.blocked}); with it, site 3 "
        f"commits at t={fixed.decision_times[3]:.1f}T -- 5T after it timed out in p -- matching "
        "every other site."
    )


if __name__ == "__main__":
    main()
