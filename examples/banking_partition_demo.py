"""Why the older protocols are not enough: a bank transfer under a partition.

A bank keeps replicated account balances at several branches.  A transfer
must be installed at every branch or none (transaction atomicity).  This
example runs the *same* partition scenario under four protocols and shows:

* plain two-phase commit blocks (branches keep their locks indefinitely);
* the extended two-phase commit of Fig. 2 violates atomicity with three or
  more branches;
* three-phase commit with naive Rule (a)/(b) timeouts also violates
  atomicity (Section 3 of the paper);
* the paper's termination protocol terminates every branch consistently.

Run with::

    python examples/banking_partition_demo.py
"""

from repro.protocols import ScenarioSpec, create_protocol, run_scenario
from repro.sim.partition import PartitionSchedule

PROTOCOLS = [
    ("two-phase-commit", "plain 2PC (Fig. 1)"),
    ("extended-two-phase-commit", "extended 2PC (Fig. 2, Rules a/b)"),
    ("naive-extended-three-phase-commit", "3PC + Rules a/b only (Section 3)"),
    ("terminating-three-phase-commit", "3PC + termination protocol (Section 5)"),
]


def run_transfer(protocol_name: str, partition_at: float, no_voter: int | None) -> None:
    partition = PartitionSchedule.simple(partition_at, [1, 2], [3])
    spec = ScenarioSpec(
        n_sites=3,
        partition=partition,
        no_voters=frozenset({no_voter}) if no_voter else frozenset(),
        initial_data={"alice": 900, "bob": 100},
        write_key="alice",
        write_value=400,
    )
    result = run_scenario(create_protocol(protocol_name), spec)
    verdict = (
        "ATOMICITY VIOLATED"
        if result.atomicity_violated
        else ("BLOCKED" if result.blocked else "consistent")
    )
    print(f"  -> commit at {list(result.committed_sites)}, abort at {list(result.aborted_sites)}, "
          f"undecided {list(result.undecided_sites)}   [{verdict}]")
    balances = {site: result.values_at_end[site] for site in result.participants}
    print(f"     alice's balance per branch: {balances}")


def main() -> None:
    print("Transfer of 500 from alice to bob, replicated at 3 branches.")
    print("The network splits {branch1, branch2} | {branch3} while the transfer commits.\n")
    for name, label in PROTOCOLS:
        print(f"{label} ({name})")
        # A partition at 2.25T (after the votes, before the decision reaches
        # branch 3) is the interesting moment for every protocol; the broken
        # extended 2PC additionally needs a dissenting branch to expose its
        # multisite defect, so we run both vote patterns.
        run_transfer(name, partition_at=2.25, no_voter=None)
        if name == "extended-two-phase-commit":
            print("  (same, but branch 2 votes no)")
            run_transfer(name, partition_at=2.25, no_voter=2)
        print()
    print(
        "Only the termination protocol terminates every branch with a single outcome while the "
        "network is still partitioned -- which is exactly the paper's claim (Theorem 9)."
    )


if __name__ == "__main__":
    main()
