"""Working with the formal model: concurrency sets, rules, lemmas, Theorem 10.

The paper's structural results are computed, not quoted: this example
explores the reachable global states of the catalogued commit protocols,
prints their concurrency and sender sets, applies Rule (a)/(b) to regenerate
the extended protocol of Fig. 2, evaluates Lemma 1 / Lemma 2, and derives the
Theorem 10 termination plan for the quorum-commit skeleton.

Run with::

    python examples/formal_model_analysis.py
"""

from repro.core import (
    analyze,
    augment_with_rules,
    check_nonblocking_conditions,
    check_theorem10_conditions,
    quorum_commit,
    three_phase_commit,
    two_phase_commit,
)
from repro.core.concurrency import format_analysis


def main() -> None:
    print("=== concurrency analysis: two-phase commit, 3 sites ===")
    analysis_2pc = analyze(two_phase_commit(), 3)
    print(format_analysis(analysis_2pc))
    print()

    print("=== concurrency analysis: three-phase commit, 3 sites ===")
    analysis_3pc = analyze(three_phase_commit(), 3)
    print(format_analysis(analysis_3pc))
    print()

    print("=== Rule (a)/(b) augmentation (reproduces Fig. 2 for two sites) ===")
    print(augment_with_rules(two_phase_commit(), 2).describe())
    print()
    print("=== the same rules applied to 3PC (the Section 3 'naive' extension) ===")
    print(augment_with_rules(three_phase_commit(), 3).describe())
    print()

    print("=== Lemma 1 / Lemma 2 ===")
    for spec in (two_phase_commit(), three_phase_commit(), quorum_commit()):
        print(" ", check_nonblocking_conditions(spec, 3).summary())
    print()

    print("=== Theorem 10: deriving the termination plan for the quorum protocol ===")
    report = check_theorem10_conditions(quorum_commit(), 3)
    plan = report.plan
    print(f"  structural conditions hold: {report.structural_conditions_hold}")
    print(f"  promotion message m        : {plan.promotion_message}")
    print(f"  acknowledgement            : {plan.acknowledgement}")
    print(f"  noncommittable -> committable: {plan.noncommittable_state} -> {plan.committable_state}")
    print(
        "\nThe executable protocol 'terminating-quorum-commit' is built from exactly this plan; "
        "see benchmarks/bench_thm10_generalization.py for its resilience sweep."
    )


if __name__ == "__main__":
    main()
