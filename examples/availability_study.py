"""Availability study: what blocking costs a replicated database.

The paper's motivation (Sections 1-2) is that a blocked transaction keeps its
locks and makes data unavailable.  This example sweeps the same set of
partition scenarios under every protocol, prints the comparison table, and
then runs a small multi-transaction workload to show lock retention directly.

Run with::

    python examples/availability_study.py
"""

from repro.experiments import run_availability_comparison, run_message_overhead
from repro.metrics import format_table
from repro.protocols import ScenarioSpec, create_protocol, run_scenario
from repro.sim.partition import PartitionSchedule
from repro.workloads import WorkloadConfig, generate_transactions


def lock_retention_demo() -> None:
    """Run a handful of workload transactions through a partitioned 2PC system."""
    print("=== lock retention under plain 2PC vs the termination protocol ===")
    workload = generate_transactions(
        WorkloadConfig(n_sites=3, n_transactions=4, keys=("x", "y"), seed=7)
    )
    partition = PartitionSchedule.simple(1.5, [1, 2], [3])
    rows = []
    for protocol_name in ("two-phase-commit", "terminating-three-phase-commit"):
        # Each workload transaction runs in its own scenario; what differs is
        # whether the protocol eventually releases site 3's locks.
        blocked = 0
        locks_held = 0
        for index, _txn in enumerate(workload):
            result = run_scenario(
                create_protocol(protocol_name),
                ScenarioSpec(n_sites=3, partition=partition, seed=index),
            )
            blocked += len(result.blocked_sites)
            locks_held += sum(1 for held in result.locks_held_at_end.values() if held)
        rows.append(
            {
                "protocol": protocol_name,
                "transactions": len(workload),
                "blocked sites (total)": blocked,
                "sites still holding locks": locks_held,
            }
        )
    print(format_table(rows))
    print()


def main() -> None:
    lock_retention_demo()

    print("=== protocol comparison over a partition sweep (AVAIL experiment) ===")
    print(run_availability_comparison(times=[0.5, 1.5, 2.5, 3.5, 4.5]).format())
    print()
    print("=== message overhead (MSG experiment) ===")
    print(run_message_overhead().format())


if __name__ == "__main__":
    main()
