"""Quickstart: commit one distributed transaction, with and without a partition.

Runs the paper's termination protocol (modified three-phase commit plus the
Section 5.3 termination protocol) on a simulated four-site database, first
failure-free and then with a simple network partition striking mid-protocol,
and prints what every site decided.

Run with::

    python examples/quickstart.py
"""

from repro.protocols import ScenarioSpec, create_protocol, run_scenario
from repro.sim.partition import PartitionSchedule


def main() -> None:
    protocol = create_protocol("terminating-three-phase-commit")

    print("=== failure-free run (4 sites) ===")
    result = run_scenario(protocol, ScenarioSpec(n_sites=4, write_key="balance", write_value=250))
    print(result.summary())
    for site in result.participants:
        print(
            f"  site {site}: decision={result.decisions[site]!r} "
            f"at t={result.decision_times[site]:.1f}T, balance={result.values_at_end[site]}"
        )
    print(f"  messages sent: {result.messages_sent}\n")

    print("=== same transaction, network splits {1,2} | {3,4} at t=2.5T ===")
    partition = PartitionSchedule.simple(2.5, [1, 2], [3, 4])
    result = run_scenario(
        create_protocol("terminating-three-phase-commit"),
        ScenarioSpec(n_sites=4, partition=partition, write_key="balance", write_value=250),
    )
    print(result.summary())
    for site in result.participants:
        decided_at = result.decision_times[site]
        when = f"t={decided_at:.1f}T" if decided_at is not None else "never"
        print(f"  site {site}: decision={result.decisions[site]!r} ({when})")
    print(
        "\nNo site is blocked and no site disagrees: the termination protocol resolved the "
        "partition without waiting for it to heal (Theorem 9)."
    )


if __name__ == "__main__":
    main()
