"""CI overhead smoke for the observability layer.

The obs design contract (docs/observability.md) is *zero-cost when off*:
every instrumentation point is gated behind one cached ``is None`` check,
so a run without ``--metrics-json`` must cost within 3% of the
pre-instrumentation engine, and a fully-enabled run within 10% of a
disabled one.  This harness enforces both bounds on the same 200-scenario
bench grid the perf smoke uses:

* **enabled-path bound** -- interleaved best-of-N sweeps with metrics +
  spans off vs on; fails when the enabled best is more than 10% slower
  than the disabled best.  Interleaving and best-of defend against CI
  noise the same way ``docs/profiling.md`` prescribes.
* **disabled-path bound** -- the disabled path's *only* added work is the
  gate itself (a module-global read plus an ``is None`` branch), so its
  cost is measured directly by microbenchmark and multiplied by a
  deliberately generous per-scenario gate count.  Fails when that bound
  exceeds 3% of the measured per-scenario time.  This is immune to
  run-to-run noise: a 3% wall-clock diff between two sweeps is within CI
  jitter, while the microbenchmark bound is stable to a few percent.

Run directly::

    PYTHONPATH=src python tools/check_overhead.py [--scenarios 200] [--rounds 3]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Gate evaluations charged per scenario for the disabled-path bound.  The
#: real disabled serial path evaluates a handful (one kernel-hook check per
#: ``Simulator.run``, one or two ``metrics is None`` checks per task, one
#: cache-probe gate when a cache is configured); 32 is a safety factor of
#: roughly ten on top of that.
GATES_PER_SCENARIO = 32

DISABLED_BOUND = 0.03
ENABLED_BOUND = 0.10


def benchmark_tasks(n_scenarios: int):
    """The standard 200-scenario bench grid (see tools/profile_kernel.py)."""
    from repro.engine import ScenarioGrid

    grid = ScenarioGrid.from_partition_sweep(
        "terminating-three-phase-commit",
        4,
        times=[round(0.25 * i, 2) for i in range(1, 13)],
        no_voter_options=(frozenset(), frozenset({2}), frozenset({4})),
    )
    tasks = list(grid.tasks())
    while len(tasks) < n_scenarios:
        tasks = tasks + tasks
    return tasks[:n_scenarios]


def sweep_once(tasks, *, observed: bool) -> float:
    """One serial streaming sweep; returns wall-clock seconds."""
    from repro.engine import SweepEngine
    from repro.engine.sink import CallbackSink
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanRecorder

    engine = SweepEngine(
        workers=1,
        metrics=MetricsRegistry() if observed else None,
        spans=SpanRecorder() if observed else None,
    )
    started = time.perf_counter()
    engine.run_streaming(tasks, sinks=CallbackSink(lambda index, summary: None))
    return time.perf_counter() - started


def gate_cost_seconds(iterations: int = 200_000) -> float:
    """Microbenchmark one disabled gate: ``get_active()`` + ``is None``."""
    from repro.obs.metrics import get_active

    # Warm attribute/import caches first so the timed loop measures the
    # steady state the engine's hot loop sees.
    for _ in range(1000):
        if get_active() is not None:  # pragma: no cover - metrics are off here
            raise RuntimeError("metrics unexpectedly active")
    started = time.perf_counter()
    for _ in range(iterations):
        if get_active() is not None:  # pragma: no cover
            raise RuntimeError("metrics unexpectedly active")
    return (time.perf_counter() - started) / iterations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios", type=int, default=200, help="grid size (default 200)"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="interleaved rounds (default 3)"
    )
    args = parser.parse_args(argv)

    tasks = benchmark_tasks(args.scenarios)
    sweep_once(tasks, observed=False)  # warm imports and caches

    disabled, enabled = [], []
    for _ in range(args.rounds):
        disabled.append(sweep_once(tasks, observed=False))
        enabled.append(sweep_once(tasks, observed=True))
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    enabled_overhead = best_enabled / best_disabled - 1.0

    gate = gate_cost_seconds()
    per_scenario = best_disabled / len(tasks)
    disabled_overhead = GATES_PER_SCENARIO * gate / per_scenario

    print(f"grid: {len(tasks)} scenarios, best of {args.rounds} interleaved rounds")
    print(
        f"disabled sweep: {best_disabled:.4f}s "
        f"({len(tasks) / best_disabled:.0f} scenarios/s)"
    )
    print(
        f"enabled sweep:  {best_enabled:.4f}s "
        f"({len(tasks) / best_enabled:.0f} scenarios/s)"
    )
    print(
        f"enabled-path overhead: {100.0 * enabled_overhead:+.2f}% "
        f"(bound {100.0 * ENABLED_BOUND:.0f}%)"
    )
    print(
        f"disabled gate: {gate * 1e9:.0f}ns x {GATES_PER_SCENARIO}/scenario "
        f"= {100.0 * disabled_overhead:.3f}% of {per_scenario * 1e6:.0f}us/scenario "
        f"(bound {100.0 * DISABLED_BOUND:.0f}%)"
    )

    failures = []
    if disabled_overhead > DISABLED_BOUND:
        failures.append(
            f"disabled-path overhead bound {100.0 * disabled_overhead:.3f}% "
            f"exceeds {100.0 * DISABLED_BOUND:.0f}%"
        )
    if enabled_overhead > ENABLED_BOUND:
        failures.append(
            f"enabled-path overhead {100.0 * enabled_overhead:.2f}% "
            f"exceeds {100.0 * ENABLED_BOUND:.0f}%"
        )
    if failures:
        print("; ".join(failures), file=sys.stderr)
        return 1
    print("overhead smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
