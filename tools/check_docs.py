"""Documentation checker: docstring coverage plus executable doc examples.

Two checks, both enforced by CI (and by ``tests/test_docs.py``):

1. **Docstring coverage** — every module under ``src/repro`` must carry a
   module-level docstring (the repo's convention: state the module's paper
   anchor and its invariants).
2. **Doctested code blocks** — every fenced ```` ```python ```` block in
   ``README.md`` and ``docs/*.md`` must execute verbatim.  Blocks run in a
   temporary working directory (so examples may create cache directories /
   spill files) with ``src`` importable, each in a fresh namespace.

Run directly::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import ast
import os
import pathlib
import sys
import tempfile
import traceback

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"
DOC_PATHS = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def missing_docstrings(root: pathlib.Path = SOURCE_ROOT) -> list[str]:
    """Paths (repo-relative) of modules lacking a module docstring."""
    missing = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            missing.append(str(path.relative_to(REPO_ROOT)))
    return missing


def iter_code_blocks(paths=DOC_PATHS):
    """Yield ``(path, first_line_number, code)`` for every ```python block."""
    for path in paths:
        if not path.exists():
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        block: list[str] | None = None
        start = 0
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if block is None:
                if stripped == "```python":
                    block = []
                    start = number + 1
            elif stripped == "```":
                yield path, start, "\n".join(block)
                block = None
            else:
                block.append(line)


def run_code_blocks(paths=DOC_PATHS) -> list[str]:
    """Execute every python block; return a description of each failure."""
    failures = []
    for path, line, code in iter_code_blocks(paths):
        label = f"{path.relative_to(REPO_ROOT)}:{line}"
        cwd = os.getcwd()
        with tempfile.TemporaryDirectory(prefix="doc-check-") as scratch:
            os.chdir(scratch)
            try:
                exec(compile(code, label, "exec"), {"__name__": f"docblock_{line}"})
            except Exception:
                failures.append(f"{label}\n{traceback.format_exc()}")
            finally:
                os.chdir(cwd)
    return failures


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    status = 0

    missing = missing_docstrings()
    if missing:
        status = 1
        print(f"{len(missing)} module(s) missing a module docstring:")
        for path in missing:
            print(f"  {path}")
    else:
        print("docstrings: every src/repro module has one")

    blocks = list(iter_code_blocks())
    failures = run_code_blocks()
    if failures:
        status = 1
        print(f"{len(failures)} of {len(blocks)} doc code block(s) failed:")
        for failure in failures:
            print(failure)
    else:
        print(f"doc examples: all {len(blocks)} python block(s) ran verbatim")
    return status


if __name__ == "__main__":
    sys.exit(main())
