"""Profile the simulation hot path: per-phase timers plus cProfile.

The sweep engine's throughput is the product of several layers -- scenario
construction, the event kernel, the protocol roles, result harvesting and
summarization/caching.  A flat cProfile listing mixes them together, so this
harness reports both views:

* **phase timers** -- wall-clock per phase of a scenario run (spec
  enumeration + hashing, cluster/db/role setup, the simulation itself,
  result harvest, summarization), totalled over the benchmark grid.  This is
  the view that says *which layer* to attack.
* **cProfile** -- the classic per-function listing over a full engine sweep
  (sorted by tottime and cumtime), for drilling into one layer.

Run directly::

    PYTHONPATH=src python tools/profile_kernel.py              # phase timers
    PYTHONPATH=src python tools/profile_kernel.py --cprofile   # + cProfile
    PYTHONPATH=src python tools/profile_kernel.py --scenarios 500 --top 40

The grid is the same 200-scenario partition sweep the throughput benchmark
uses (``benchmarks/bench_simulator_throughput.py``), so numbers line up with
``BENCH_sweep.json`` and the CI perf-smoke step.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pathlib
import pstats
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def benchmark_tasks(n_scenarios: int):
    """The benchmark grid: a deterministic partition sweep (see benchmarks/)."""
    from repro.engine import ScenarioGrid

    grid = ScenarioGrid.from_partition_sweep(
        "terminating-three-phase-commit",
        4,
        times=[round(0.25 * i, 2) for i in range(1, 13)],
        no_voter_options=(frozenset(), frozenset({2}), frozenset({4})),
    )
    tasks = list(grid.tasks())
    while len(tasks) < n_scenarios:
        tasks = tasks + tasks
    return tasks[:n_scenarios]


def run_phases(tasks, *, with_trace: bool = False, recorder=None) -> dict[str, float]:
    """Run every task once, timing each phase of the scenario pipeline.

    The phases replicate ``run_scenario`` + ``RunSummary.from_result`` step
    by step so each layer is timed in isolation; the split must be kept in
    sync with ``repro.protocols.runner.run_scenario`` if that changes.

    By default runs trace-free (a ``NullTrace``), mirroring the engine's
    measure-free path; pass ``with_trace=True`` to time trace collection too.
    """
    from repro.core.termination import TerminationTimers
    from repro.db.site import DatabaseSite
    from repro.db.transactions import Transaction
    from repro.engine.summary import RunSummary
    from repro.protocols.base import ProtocolContext
    from repro.protocols.registry import create_protocol
    from repro.protocols.runner import TransactionRunResult
    from repro.sim.cluster import Cluster
    from repro.sim.trace import NullTrace

    phases = {
        "hashing": 0.0,  # spec_hash of every task (cache-key cost)
        "setup": 0.0,  # cluster + db sites + roles + schedules
        "simulate": 0.0,  # cluster.start_all + run to horizon
        "harvest": 0.0,  # TransactionRunResult construction
        "summarize": 0.0,  # RunSummary.from_result + to_json_bytes
    }
    clock = time.perf_counter

    for task in tasks:
        t0 = clock()
        _ = task.spec_hash
        t1 = clock()

        spec = task.spec
        protocol = create_protocol(task.protocol)
        latency = spec.effective_latency()
        timers = TerminationTimers(max_delay=latency.upper_bound)
        cluster = Cluster(
            spec.n_sites,
            latency=latency,
            model=spec.model,
            seed=spec.seed,
            trace=None if with_trace else NullTrace(),
        )
        participants = tuple(cluster.site_ids())
        transaction = Transaction.simple_update(
            1, participants, spec.write_key, spec.write_value
        )
        db_sites = {
            site: DatabaseSite(site, initial_data=spec.initial_data)
            for site in participants
        }
        roles = {}
        for site in participants:
            ctx = ProtocolContext(
                node=cluster.node(site),
                db=db_sites[site],
                transaction=transaction,
                participants=participants,
                master=1,
                timers=timers,
                no_voters=frozenset(spec.no_voters),
            )
            builder = protocol.coordinator if site == 1 else protocol.participant
            roles[site] = builder(ctx)
        if spec.partition is not None:
            cluster.apply_partition_schedule(spec.partition)
        if spec.crashes is not None:
            cluster.apply_crash_schedule(spec.crashes)
        t2 = clock()

        cluster.start_all()
        cluster.run(until=spec.effective_horizon())
        t3 = clock()

        result = TransactionRunResult(
            protocol=task.protocol,
            spec=spec,
            transaction=transaction,
            trace=cluster.trace,
            db_sites=db_sites,
            messages_sent=cluster.network.messages_sent,
            messages_delivered=cluster.network.messages_delivered,
            messages_bounced=cluster.network.messages_bounced,
            messages_dropped=cluster.network.messages_dropped,
            finished_at=cluster.sim.now,
        )
        txn_id = transaction.transaction_id
        for site in participants:
            role = roles[site]
            result.decisions[site] = role.decision.value if role.decision else None
            result.decision_times[site] = role.decided_at
            result.votes[site] = role.vote
            result.states[site] = role.state
            result.conflicting_decisions[site] = role.conflicting_decisions
            result.locks_held_at_end[site] = db_sites[site].holds_locks(txn_id)
            result.values_at_end[site] = db_sites[site].value(spec.write_key)
        t4 = clock()

        summary = RunSummary.from_result(result, spec_hash=task.spec_hash)
        summary.to_json_bytes()
        t5 = clock()

        phases["hashing"] += t1 - t0
        phases["setup"] += t2 - t1
        phases["simulate"] += t3 - t2
        phases["harvest"] += t4 - t3
        phases["summarize"] += t5 - t4
        if recorder is not None:
            # Same clock readings, recorded through the span pipeline: the
            # exported NDJSON must re-sum to the phase table (see --spans).
            recorder.record_interval("hashing", t0, t1)
            recorder.record_interval("setup", t1, t2)
            recorder.record_interval("simulate", t2, t3)
            recorder.record_interval("harvest", t3, t4)
            recorder.record_interval("summarize", t4, t5)
    return phases


def print_phases(phases: dict[str, float], n_scenarios: int) -> None:
    total = sum(phases.values())
    print(f"\n== per-phase wall clock over {n_scenarios} scenarios ==")
    for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
        share = 100.0 * seconds / total if total else 0.0
        per = 1e6 * seconds / n_scenarios
        print(f"  {name:<10} {seconds:8.3f}s  {share:5.1f}%  ({per:8.1f} us/scenario)")
    print(f"  {'total':<10} {total:8.3f}s         ({n_scenarios / total:8.0f} scenarios/s)")


def check_span_agreement(
    phases: dict[str, float], ndjson_path: pathlib.Path, *, tolerance: float = 1e-3
):
    """Re-sum the exported span NDJSON and compare it to the phase timers.

    The spans were recorded from the *same* ``perf_counter`` readings as the
    phase table, so the only allowed divergence is the 9-decimal rounding
    the NDJSON export applies -- nanoseconds per span.  Returns an error
    string when any phase diverges by more than ``tolerance`` (relative),
    ``None`` when the two views agree.
    """
    import json

    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for line in ndjson_path.read_text().splitlines():
        record = json.loads(line)
        totals[record["span"]] = totals.get(record["span"], 0.0) + record["duration"]
        counts[record["span"]] = counts.get(record["span"], 0) + 1
    print(f"\n== span cross-check ({ndjson_path}) ==")
    worst = 0.0
    for name, timer_total in sorted(phases.items(), key=lambda kv: -kv[1]):
        span_total = totals.get(name, 0.0)
        delta = abs(span_total - timer_total) / timer_total if timer_total else 0.0
        worst = max(worst, delta)
        print(
            f"  {name:<10} timer {timer_total:9.4f}s  spans {span_total:9.4f}s "
            f"({counts.get(name, 0)} span(s), delta {100.0 * delta:.4f}%)"
        )
    missing = sorted(set(phases) - set(totals))
    if missing:
        return f"span file is missing phase(s): {', '.join(missing)}"
    if worst > tolerance:
        return (
            f"span totals diverge from phase timers by {100.0 * worst:.4f}% "
            f"(> {100.0 * tolerance:.4f}% tolerance)"
        )
    return None


def run_cprofile(tasks, top: int) -> None:
    """cProfile a full engine sweep over ``tasks`` (workers=1, no cache)."""
    from repro.engine import SweepEngine

    engine = SweepEngine(workers=1)
    engine.run(tasks[: max(10, len(tasks) // 10)])  # warm imports/caches
    profiler = cProfile.Profile()
    profiler.enable()
    engine.run(tasks)
    profiler.disable()
    for sort in ("tottime", "cumulative"):
        out = io.StringIO()
        stats = pstats.Stats(profiler, stream=out).sort_stats(sort)
        stats.print_stats(top)
        print(f"\n== cProfile (sorted by {sort}) ==")
        print(out.getvalue())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios", type=int, default=200, help="grid size (default 200)"
    )
    parser.add_argument(
        "--cprofile", action="store_true", help="also run the cProfile sweep"
    )
    parser.add_argument(
        "--top", type=int, default=25, help="rows per cProfile listing"
    )
    parser.add_argument(
        "--with-trace",
        action="store_true",
        help="collect traces during the phase run (the engine's measure path)",
    )
    parser.add_argument(
        "--spans",
        metavar="PATH",
        default=None,
        help="also record every phase through repro.obs.spans, export NDJSON "
        "to PATH, and fail unless the re-summed spans match the phase table",
    )
    args = parser.parse_args(argv)

    recorder = None
    if args.spans is not None:
        from repro.obs.spans import SpanRecorder

        recorder = SpanRecorder()

    tasks = benchmark_tasks(args.scenarios)
    run_phases(tasks[: max(10, len(tasks) // 10)])  # warm imports/caches
    # Fresh tasks so the timed hashing phase is not pre-cached.
    tasks = benchmark_tasks(args.scenarios)
    phases = run_phases(tasks, with_trace=args.with_trace, recorder=recorder)
    print_phases(phases, len(tasks))
    if recorder is not None:
        spans_path = pathlib.Path(args.spans)
        recorder.write_ndjson(spans_path)
        error = check_span_agreement(phases, spans_path)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
    if args.cprofile:
        run_cprofile(benchmark_tasks(args.scenarios), args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
