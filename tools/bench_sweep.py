"""Write ``BENCH_sweep.json``: the per-commit sweep-engine perf snapshot.

CI's benchmarks job runs this and uploads the JSON as an artifact, so the
performance trajectory of the engine's three hot paths is tracked commit
by commit:

* **cold throughput** -- scenarios/s of a cold streaming sweep;
* **warm cache** -- scenarios/s and hit rate of the identical re-sweep
  (must be 100% hits, zero executions);
* **shard-merge** -- seconds to fold a 3-shard spill set back into
  aggregates, plus a byte-identity check against the single-machine spill;
* **open-loop txn throughput** -- simulated transactions/s of the
  concurrent-transaction scheduler under Poisson arrivals, hot-spot skew,
  victim retries and a crash/recovery schedule (the RETRY workload shape).

Run directly::

    PYTHONPATH=src python tools/bench_sweep.py [--out BENCH_sweep.json]

The grid is deliberately modest (hundreds of scenarios, seconds of wall
clock) so the job stays cheap; the numbers are for *trajectory*, not
absolute benchmarking (see benchmarks/ for those).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SHARD_COUNT = 3


def openloop_txn_pass():
    """Time the scheduler on the RETRY-shaped open-loop workload.

    Returns ``(transactions, elapsed_seconds, committed)`` for one
    contended 200-transaction run with Poisson arrivals, hot-spot skew,
    a retry budget, lock-wait timeouts and a mid-run crash/recovery --
    the open-loop txn/s figure tracked per commit.
    """
    from repro.sim.failures import CrashSchedule
    from repro.txn import (
        DeadlockPolicy,
        RetryPolicy,
        ThroughputSpec,
        run_throughput_scenario,
    )

    spec = ThroughputSpec(
        n_sites=3,
        n_transactions=200,
        tx_rate=2.0,
        arrival="poisson",
        hotspot=1.0,
        n_keys=8,
        op_delay=0.1,
        crashes=CrashSchedule.single(2, 60.0, recover_at=68.0),
        deadlock=DeadlockPolicy(detect_cycles=True, wait_timeout=4.0),
        retry=RetryPolicy(max_attempts=3, backoff=1.0),
        seed=7,
    )
    started = time.perf_counter()
    summary = run_throughput_scenario("terminating-three-phase-commit", spec).summary
    elapsed = time.perf_counter() - started
    return summary.offered, elapsed, summary.committed


def build_tasks():
    """The benchmark grid: 2 protocols x standard onsets x 3 simple splits."""
    from repro.engine import ScenarioGrid

    tasks = []
    for protocol in ("two-phase-commit", "terminating-three-phase-commit"):
        grid = ScenarioGrid.from_partition_sweep(
            protocol, 3, times=[t * 0.25 for t in range(1, 17)]
        )
        tasks.extend(grid.tasks())
    return tasks


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; CI containers and cgroup limits
    often allow far fewer.  A multi-worker "speedup" measured with more
    workers than usable CPUs is time-slicing, not parallelism -- the
    snapshot records this number so such comparisons are annotated rather
    than misread as engine regressions.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def check_against_baseline(payload: dict, baseline_path: pathlib.Path, tolerance: float):
    """Compare the single-core rate against a committed baseline snapshot.

    Returns an error string when ``serial_scenarios_per_second`` regressed
    by more than ``tolerance`` (a fraction, e.g. ``0.2``), ``None`` when
    within bounds.  Only the serial rate is gated: it is the one number
    that is meaningful regardless of how many CPUs the runner happens to
    expose.
    """
    baseline = json.loads(baseline_path.read_text())
    reference = baseline.get("serial_scenarios_per_second")
    if not reference:
        return f"baseline {baseline_path} has no serial_scenarios_per_second"
    current = payload["serial_scenarios_per_second"]
    floor = reference * (1.0 - tolerance)
    if current < floor:
        return (
            f"single-core regression: {current:.1f} scenarios/s is more than "
            f"{tolerance:.0%} below the baseline {reference:.1f} "
            f"(floor {floor:.1f}, from {baseline_path})"
        )
    return None


def worker_metrics(snapshot: dict) -> dict:
    """Fold an obs snapshot into the bench fields for the cold pass.

    Returns ``dispatch_overhead_share`` (the fraction of ``elapsed x
    workers`` not spent executing scenarios -- the number ROADMAP item 1
    blames for workers=4 losing to workers=1) and per-worker utilization,
    straight from the gauges the engine finalizes per run.
    """
    gauges = snapshot.get("gauges", {})
    utilization = {}
    for name, value in gauges.items():
        prefix, _, quantity = name.rpartition(".")
        if quantity == "utilization" and prefix.startswith("engine.worker."):
            utilization[prefix[len("engine.worker."):]] = round(value, 4)
    return {
        "dispatch_overhead_share": round(
            gauges.get("engine.dispatch_overhead_share", 0.0), 4
        ),
        "worker_utilization": utilization,
    }


def main(argv=None) -> int:
    """Run the timed passes and write the JSON snapshot."""
    from repro.engine import JsonlSink, SweepEngine, merge_shards, run_shard
    from repro.obs.metrics import MetricsRegistry

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sweep.json", metavar="PATH")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare serial scenarios/s against this committed BENCH_sweep.json "
        "and fail on regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression for --check (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)

    cpus = usable_cpus()
    tasks = build_tasks()
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as scratch:
        scratch = pathlib.Path(scratch)
        cache = scratch / "cache"
        cold_metrics = MetricsRegistry()
        engine = SweepEngine(workers=args.workers, cache=cache, metrics=cold_metrics)

        # Serial pass first, uncached: the one rate comparable across any
        # runner, and the number the perf-smoke --check gates on.
        serial = SweepEngine(workers=1).run_streaming(
            tasks, sinks=JsonlSink(scratch / "serial.jsonl")
        )

        cold = engine.run_streaming(tasks, sinks=JsonlSink(scratch / "cold.jsonl"))
        # Snapshot before the warm pass: the per-run gauges (utilization,
        # dispatch-overhead share) must describe the cold sweep alone.
        cold_snapshot = cold_metrics.snapshot()
        warm = engine.run_streaming(tasks, sinks=JsonlSink(scratch / "warm.jsonl"))

        spills = []
        shard_started = time.perf_counter()
        for index in range(SHARD_COUNT):
            spill = scratch / f"shard-{index}.jsonl"
            run_shard(
                tasks,
                index,
                SHARD_COUNT,
                spill,
                engine=SweepEngine(workers=args.workers, cache=cache),
            )
            spills.append(spill)
        shard_elapsed = time.perf_counter() - shard_started

        merge_started = time.perf_counter()
        result = merge_shards(spills, jsonl=scratch / "merged.jsonl")
        merge_elapsed = time.perf_counter() - merge_started
        byte_identical = (
            (scratch / "merged.jsonl").read_bytes()
            == (scratch / "cold.jsonl").read_bytes()
        )

    openloop_offered, openloop_elapsed, openloop_committed = openloop_txn_pass()

    parallel_meaningful = args.workers <= cpus
    payload = {
        "scenarios": cold.total,
        "workers": args.workers,
        "usable_cpus": cpus,
        "serial_elapsed_seconds": round(serial.elapsed, 4),
        "serial_scenarios_per_second": round(serial.throughput, 1),
        # False when workers exceed usable CPUs: the cold-vs-serial ratio is
        # then time-slicing overhead, not a parallel speedup measurement.
        "parallel_comparison_meaningful": parallel_meaningful,
        "cold_elapsed_seconds": round(cold.elapsed, 4),
        "cold_scenarios_per_second": round(cold.throughput, 1),
        "warm_elapsed_seconds": round(warm.elapsed, 4),
        "warm_scenarios_per_second": round(warm.throughput, 1),
        "cache_hit_rate": round(warm.cache_hits / warm.total, 4) if warm.total else 0.0,
        "warm_executed": warm.executed,
        "shard_count": SHARD_COUNT,
        "shard_run_seconds": round(shard_elapsed, 4),
        "shard_merge_seconds": round(merge_elapsed, 4),
        "merged_records": result.records,
        "merged_byte_identical": byte_identical,
        "openloop_transactions": openloop_offered,
        "openloop_committed": openloop_committed,
        "openloop_elapsed_seconds": round(openloop_elapsed, 4),
        "openloop_txn_per_second": round(openloop_offered / openloop_elapsed, 1)
        if openloop_elapsed
        else 0.0,
        **worker_metrics(cold_snapshot),
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not parallel_meaningful:
        print(
            f"note: workers={args.workers} exceeds usable_cpus={cpus}; "
            "multi-worker numbers measure time-slicing, not parallel speedup",
            file=sys.stderr,
        )

    failures = []
    if warm.executed != 0:
        failures.append(f"warm re-sweep executed {warm.executed} scenario(s)")
    if not byte_identical:
        failures.append("shard-merge spill differs from the single-machine spill")
    if args.check is not None:
        error = check_against_baseline(payload, pathlib.Path(args.check), args.tolerance)
        if error is not None:
            failures.append(error)
    if failures:
        print("; ".join(failures), file=sys.stderr)
        return 1
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
